"""Sharded multi-process Monte-Carlo experiment engine.

The paper's headline evidence is Monte-Carlo: every LER point needs on
the order of 100 logical failures, and deep points (BB-288 at circuit
level) need millions of shots.  This engine fans batches of shots out
to a pool of **persistent worker processes**:

* the shot budget is cut into fixed-size *shards*;
* shard ``i`` derives its sampling and decoder RNG streams from the
  run's master seed via :mod:`repro.sim.seeding` — independent of the
  worker count, so a run is bit-reproducible for any ``n_workers``;
* each worker materialises its ``(problem, decoder)`` pair once and
  decodes whole shards, streaming :class:`MonteCarloResult`-shaped
  column chunks back to the controller;
* the controller merges chunks through :meth:`MonteCarloResult.merge`
  in shard order.

Adaptive shot allocation
------------------------
With ``max_failures`` or ``target_rse`` set, the controller keeps
dispatching shards until the *prefix* of completed shards (in shard
order) meets the target, then cancels outstanding shards.  The stopping
rule is evaluated on shard prefixes only, so the merged result — and
therefore every statistic derived from it — is identical for any
worker count and any completion timing; at most one shard of overshoot
past the shard where the target is reached.

Resumable point tasks
---------------------
:func:`run_point_tasks` is the general entry point: each
:class:`PointTask` carries its own budget (``shots`` /
``max_failures`` / ``target_rse`` / ``shard_shots`` / ``batch_size``)
and an optional resume offset (``start_shard`` plus the prior prefix's
cumulative counters).  Because shard ``i``'s streams depend only on the
task's seed root and ``i``, a resumed task computes exactly the shards
a fresh, bigger-budget run would have appended — the property the
persistent sweep store (:mod:`repro.sweeps`) uses to merge incremental
shots into stored results bit-identically.  :func:`run_ler_parallel`
and :func:`run_sweep` are uniform-task wrappers.

Decoder specifications
----------------------
Workers need to build the decoder, so ``decoder`` may be

* a name from :data:`repro.decoders.registry.DECODER_REGISTRY`
  (resolved inside each worker),
* a picklable factory ``f(problem) -> Decoder`` (a module-level
  function; lambdas and closures do not pickle), or
* a :class:`~repro.decoders.base.Decoder` instance (pickled into each
  worker; its :meth:`~repro.decoders.base.Decoder.reseed` hook is
  invoked per shard, which is what makes sampling decoders
  reproducible).

:func:`repro.sim.monte_carlo.run_ler` is the ``n_workers = 1`` case of
this engine and shares every code path but the pool.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass

import numpy as np

from repro.decoders.base import Decoder
from repro.problem import DecodingProblem
from repro.sim.monte_carlo import MonteCarloResult
from repro.sim.seeding import run_root, shard_streams
from repro.sim.stats import wilson_interval

__all__ = [
    "DEFAULT_SHARD_RETRIES",
    "DEFAULT_SHARD_TIMEOUT",
    "PointTask",
    "budget_satisfied",
    "resolve_decoder",
    "run_ler_parallel",
    "run_point_tasks",
    "run_sweep",
    "shard_sizes",
]

# Default wall-clock budget per shard before the controller declares
# the pool hung (a worker that died without reporting, a deadlocked
# fork).  Generous enough for paper-scale shards; ``None`` disables.
DEFAULT_SHARD_TIMEOUT = 600.0

# How many times a presumed-hung shard is re-dispatched before the run
# gives up.  A retry is handed to the pool's task queue, which only
# idle workers drain — the hung worker is still occupied by the stale
# attempt — so a retry lands on a different worker by construction.
DEFAULT_SHARD_RETRIES = 2


def resolve_decoder(spec, problem: DecodingProblem) -> Decoder:
    """Materialise a decoder from a spec (name / factory / instance)."""
    if isinstance(spec, str):
        from repro.decoders.registry import get_decoder

        return get_decoder(spec, problem)
    if isinstance(spec, Decoder):
        return spec
    if callable(spec):
        return spec(problem)
    raise TypeError(
        f"decoder spec {spec!r} is neither a registry name, a factory "
        "callable, nor a Decoder instance"
    )


def shard_sizes(shots: int, shard_shots: int) -> list[int]:
    """Cut a shot budget into fixed-size shards (last one may be short).

    The decomposition depends only on ``(shots, shard_shots)`` — never
    on the worker count — which is the backbone of cross-worker-count
    reproducibility.
    """
    if shots < 1:
        raise ValueError("shots must be positive")
    if shard_shots < 1:
        raise ValueError("shard_shots must be positive")
    full, rest = divmod(shots, shard_shots)
    return [shard_shots] * full + ([rest] if rest else [])


def _decode_shard(
    problem: DecodingProblem,
    decoder: Decoder,
    shots: int,
    root: np.random.SeedSequence,
    shard: int,
    batch_size: int,
) -> MonteCarloResult:
    """Decode one shard; the unit of work shared by all worker counts."""
    sample_rng, decoder_rng = shard_streams(root, shard)
    decoder.reseed(decoder_rng)
    failures = 0
    initial = 0
    post = 0
    unconverged = 0
    iteration_chunks: list[np.ndarray] = []
    parallel_chunks: list[np.ndarray] = []
    for lo in range(0, shots, batch_size):
        batch = min(batch_size, shots - lo)
        errors = problem.sample_errors(batch, sample_rng)
        syndromes = problem.syndromes(errors)
        results = decoder.decode_many(syndromes)
        failures += int(problem.is_failure(errors, results.errors).sum())
        initial += results.n_initial
        post += results.n_post
        unconverged += results.n_unconverged
        iteration_chunks.append(results.iterations)
        parallel_chunks.append(results.parallel_iterations)
    return MonteCarloResult(
        problem_name=problem.name,
        decoder_name=getattr(decoder, "name", type(decoder).__name__),
        shots=shots,
        failures=failures,
        rounds=problem.rounds,
        initial_successes=initial,
        post_processed=post,
        unconverged=unconverged,
        iterations=np.concatenate(iteration_chunks),
        parallel_iterations=np.concatenate(parallel_chunks),
    )


# -- worker-process plumbing ----------------------------------------------

_WORKER_POINTS: dict = {}
_WORKER_CACHE: dict = {}


def _init_worker(points: dict) -> None:
    """Executor initializer: stash every point's (problem, spec) pair."""
    global _WORKER_POINTS, _WORKER_CACHE
    _WORKER_POINTS = points
    _WORKER_CACHE = {}


def _worker_shard(key, shard: int, shots: int, root, batch_size: int):
    """Task body: decode one shard of one sweep point."""
    pair = _WORKER_CACHE.get(key)
    if pair is None:
        problem, spec = _WORKER_POINTS[key]
        pair = (problem, resolve_decoder(spec, problem))
        _WORKER_CACHE[key] = pair
    problem, decoder = pair
    return shard, _decode_shard(
        problem, decoder, shots, root, shard, batch_size
    )


def budget_satisfied(
    failures: int,
    shots: int,
    max_failures: int | None,
    target_rse: float | None,
) -> bool:
    """Whether accumulated ``(failures, shots)`` meet the adaptive target.

    ``max_failures`` is the paper's ≥-N-failures rule; ``target_rse``
    bounds the Wilson 95% interval's relative half-width
    ``(hi - lo) / (2 · LER)``.  This is the *single* stopping predicate
    of the engine — the sweep store evaluates it on persisted results to
    decide whether a point is already resolved, so stored and live runs
    can never disagree about resolution.
    """
    if max_failures is not None and failures >= max_failures:
        return True
    if target_rse is not None and failures > 0 and shots > 0:
        p = failures / shots
        lo, hi = wilson_interval(failures, shots)
        if (hi - lo) / (2.0 * p) <= target_rse:
            return True
    return False


@dataclass
class PointTask:
    """One resumable unit of sweep work: a (problem, decoder) point.

    The task-level API generalises :func:`run_ler_parallel` in two ways
    the declarative sweep layer (:mod:`repro.sweeps`) needs:

    * **per-point budgets** — each task carries its own ``shots`` cap,
      ``max_failures`` / ``target_rse`` targets, ``shard_shots`` and
      ``batch_size`` (``None`` falls back to the run-level default);
    * **resume** — ``start_shard`` says how many leading shards a
      previous run already computed; their cumulative ``prior_failures``
      / ``prior_shots`` seed the stopping rule, so a resumed run stops
      at exactly the shard a fresh, bigger-budget run would have
      stopped at, and the new chunks merge bit-identically onto the
      stored prefix.

    ``seed`` may be anything :func:`repro.sim.seeding.run_root`
    accepts; shard ``i`` of this task always derives its streams from
    that root's ``i``-th child, whether or not shards 0..start-1 are
    re-run.
    """

    label: object
    problem: DecodingProblem
    decoder: object
    shots: int
    seed: object
    max_failures: int | None = None
    target_rse: float | None = None
    start_shard: int = 0
    prior_failures: int = 0
    prior_shots: int = 0
    shard_shots: int | None = None
    batch_size: int | None = None


class _PrefixController:
    """Shard-prefix stopping rule shared by the serial and pooled paths.

    Feed completed shard chunks in any order; :attr:`stop_at` becomes
    the index of the first shard at which the *contiguous prefix* of
    results satisfies the failure / CI target.  Only chunks up to that
    shard enter the merge, so the outcome is independent of completion
    timing and worker count.

    With ``start_shard > 0`` the controller resumes an earlier run:
    shards below ``start_shard`` are never dispatched, their cumulative
    ``(prior_failures, prior_shots)`` pre-load the stopping counters,
    and :meth:`merged` returns only the **new** chunks.
    """

    def __init__(
        self,
        n_shards,
        max_failures,
        target_rse,
        *,
        start_shard: int = 0,
        prior_failures: int = 0,
        prior_shots: int = 0,
    ):
        self.n_shards = n_shards
        self.max_failures = max_failures
        self.target_rse = target_rse
        self.start_shard = start_shard
        self.chunks: dict[int, MonteCarloResult] = {}
        self.stop_at: int | None = None
        self._frontier = start_shard
        self._failures = prior_failures
        self._shots = prior_shots
        self._done = 0  # chunks counting toward progress (see add)

    def add(self, shard: int, chunk: MonteCarloResult) -> None:
        if shard in self.chunks:
            # A retried shard can complete twice (the stale attempt
            # eventually wakes up).  Attempts are deterministic — shard
            # streams depend only on the seed root and index — so the
            # duplicate is bit-identical and safely dropped.
            return
        self.chunks[shard] = chunk
        if self.stop_at is None:
            self._done += 1
        while self.stop_at is None and self._frontier in self.chunks:
            front = self.chunks[self._frontier]
            self._failures += front.failures
            self._shots += front.shots
            if budget_satisfied(
                self._failures, self._shots,
                self.max_failures, self.target_rse,
            ):
                self.stop_at = self._frontier
                # One-off correction: overshoot chunks beyond the stop
                # no longer count toward progress (the prefix up to
                # ``stop_at`` is complete by construction).
                self._done = self.stop_at + 1 - self.start_shard
            self._frontier += 1

    @property
    def done(self) -> bool:
        """Whether no further shards can change the merged result."""
        if self.stop_at is not None:
            return True
        return self._frontier >= self.n_shards

    def next_needed(self, dispatched: int) -> int | None:
        """Next shard index worth dispatching, or ``None``."""
        if self.stop_at is not None or dispatched >= self.n_shards:
            return None
        return dispatched

    def merged(self) -> MonteCarloResult:
        last = self.stop_at if self.stop_at is not None else self.n_shards - 1
        ordered = [self.chunks[i] for i in range(self.start_shard, last + 1)]
        return MonteCarloResult.merge(ordered)

    def progress(self) -> tuple[int, int]:
        """``(done, planned)`` newly computed shards for this task.

        ``planned`` shrinks when the adaptive rule stops the task early
        (shards past ``stop_at`` are cancelled, not computed), so a
        progress bar driven by summed controller progress converges to
        ``done == planned`` exactly when the run finishes.  O(1):
        the counter is maintained incrementally by :meth:`add`, so a
        per-shard progress callback costs constant work per shard even
        on paper-scale runs.
        """
        if self.stop_at is not None:
            planned = self.stop_at + 1 - self.start_shard
        else:
            planned = self.n_shards - self.start_shard
        return min(self._done, planned), planned


def _validate_knobs(shots, n_workers, batch_size, target_rse):
    if shots < 1:
        raise ValueError("shots must be positive")
    if n_workers < 1:
        raise ValueError("n_workers must be positive")
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    if target_rse is not None and target_rse <= 0:
        raise ValueError("target_rse must be positive")


def _controller_for(task: PointTask, n_shards: int) -> _PrefixController:
    return _PrefixController(
        n_shards,
        task.max_failures,
        task.target_rse,
        start_shard=task.start_shard,
        prior_failures=task.prior_failures,
        prior_shots=task.prior_shots,
    )


def _run_task_serial(
    task: PointTask, sizes, root, batch_size, on_shard=None
) -> MonteCarloResult:
    decoder = resolve_decoder(task.decoder, task.problem)
    controller = _controller_for(task, len(sizes))
    for shard in range(task.start_shard, len(sizes)):
        controller.add(
            shard,
            _decode_shard(
                task.problem, decoder, sizes[shard], root, shard,
                batch_size,
            ),
        )
        if on_shard is not None:
            on_shard(controller)
        if controller.done:
            break
    return controller.merged()


def _run_tasks_pooled(
    pool,
    tasks: list[PointTask],
    roots_by_key,
    sizes_by_key,
    batch_by_key,
    n_workers,
    shard_timeout,
    on_result=None,
    on_progress=None,
    shard_retries: int = DEFAULT_SHARD_RETRIES,
) -> dict:
    """Drive every task's shards through one interleaved dispatch loop.

    Shards of all points share a single in-flight window, so a sweep
    whose points each have only a few shards (laptop-scale benchmarks)
    still keeps every worker busy across point boundaries instead of
    idling at each point's tail.  Each point keeps its own
    :class:`_PrefixController`, so results are identical to running the
    points one at a time.

    Hang recovery: when no shard completes within ``shard_timeout``,
    every *running* in-flight attempt is presumed hung and its shard is
    re-dispatched (up to ``shard_retries`` times per shard).  The pool
    only hands queued work to idle workers — the hung workers are still
    occupied by their stale attempts — so a retry runs on a different
    worker.  Attempts are deterministic (shard streams depend only on
    the seed root and the shard index), so whichever attempt finishes
    first wins and late duplicates are dropped by the controller; the
    merged result is bit-identical to an un-hung run.  Only when a
    shard's retry budget is exhausted does the run fail.

    Returns ``(merged, hung_attempts)``: the per-label results plus the
    presumed-hung attempts still running at the end.  The caller must
    **not** join the pool gracefully when ``hung_attempts`` is
    non-empty — a genuinely wedged worker would block that join forever
    (see :func:`_shutdown_pool`).
    """
    order = [task.label for task in tasks]
    controllers = {
        task.label: _controller_for(task, len(sizes_by_key[task.label]))
        for task in tasks
    }
    dispatched = {task.label: task.start_shard for task in tasks}
    reported: set = set()

    def _maybe_report(key) -> None:
        # Fire the completion callback the moment a point's merged
        # result is final, while other points are still decoding — the
        # hook the sweep layer uses to persist each point as it lands.
        if on_result is None or key in reported:
            return
        controller = controllers[key]
        if controller.done:
            reported.add(key)
            on_result(key, controller.merged())

    def _report_progress() -> None:
        if on_progress is None:
            return
        done = 0
        planned = 0
        for controller in controllers.values():
            d, p = controller.progress()
            done += d
            planned += p
        on_progress(done, planned)

    in_flight: dict = {}  # Future -> (key, shard)
    retries: dict = {}    # (key, shard) -> retry attempts used

    def _submit(key, shard) -> None:
        future = pool.submit(
            _worker_shard,
            key,
            shard,
            sizes_by_key[key][shard],
            roots_by_key[key],
            batch_by_key[key],
        )
        in_flight[future] = (key, shard)

    # Keep the queue deep enough that workers never starve while the
    # controllers digest results, but shallow enough that an adaptive
    # stop wastes at most ~two rounds of shards.
    max_in_flight = 2 * n_workers

    def next_task():
        for key in order:
            nxt = controllers[key].next_needed(dispatched[key])
            if nxt is not None:
                return key, nxt
        return None

    while any(not c.done for c in controllers.values()):
        while len(in_flight) < max_in_flight:
            item = next_task()
            if item is None:
                break
            key, shard = item
            _submit(key, shard)
            dispatched[key] += 1
        if not in_flight:
            break
        completed, _ = wait(
            in_flight, timeout=shard_timeout, return_when=FIRST_COMPLETED
        )
        if not completed:
            # Watchdog fired: presume the *running* attempts hung
            # (queued ones are merely waiting behind them) and retry
            # each such shard once more on the pool.
            running = {
                pair for future, pair in in_flight.items()
                if future.running()
            } or set(in_flight.values())
            exhausted = []
            resubmitted = 0
            for key, shard in sorted(running, key=lambda p: (order.index(p[0]), p[1])):
                used = retries.get((key, shard), 0)
                if used >= shard_retries:
                    exhausted.append((key, shard))
                    continue
                retries[(key, shard)] = used + 1
                _submit(key, shard)
                resubmitted += 1
            if resubmitted == 0:
                for future in in_flight:
                    future.cancel()
                shards = ", ".join(
                    f"{key}[shard {shard}]" for key, shard in exhausted
                )
                raise RuntimeError(
                    f"no shard completed within {shard_timeout:.0f}s and "
                    f"the retry budget ({shard_retries} per shard) is "
                    f"exhausted for {shards} — worker pool looks hung; "
                    "raise shard_timeout (CLI --shard-timeout, bench "
                    "REPRO_SHARD_TIMEOUT; 0 waits forever) if shards "
                    "are legitimately this slow"
                )
            continue
        for future in completed:
            key, _ = in_flight.pop(future)
            shard, chunk = future.result()
            controllers[key].add(shard, chunk)
            _maybe_report(key)
        _report_progress()
    for future in in_flight:
        future.cancel()
    for key in order:
        _maybe_report(key)
    hung_attempts = [
        pair for future, pair in in_flight.items()
        if pair in retries and not future.done()
    ]
    return {key: controllers[key].merged() for key in order}, hung_attempts


def _shutdown_pool(pool, *, hung: bool) -> None:
    """Shut the worker pool down without joining wedged processes.

    A graceful ``shutdown(wait=True)`` joins every worker — including
    one stuck in a non-terminating shard attempt, which would block the
    caller forever *after* the run already recovered (or failed) via
    the retry path.  When any attempt is presumed hung, the worker
    processes are killed first: their results are either already merged
    (a retry won) or void (the run raised), so nothing of value is
    lost.  ``_processes`` is ProcessPoolExecutor's worker table — there
    is no public kill switch.
    """
    if hung:
        for process in list(getattr(pool, "_processes", {}).values()):
            process.kill()
    pool.shutdown(wait=True, cancel_futures=True)


def _mp_context(name: str | None):
    """Fork by default (cheap, inherits warm imports); fallback clean."""
    if name is not None:
        return mp.get_context(name)
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else None)


def _pickled_points(points: dict) -> dict:
    """Validate that every (problem, spec) pair survives pickling."""
    try:
        pickle.dumps(points)
    except Exception as exc:
        raise TypeError(
            "decoder spec or problem is not picklable for worker "
            "processes — pass a registry name or a module-level "
            f"factory instead (lambdas do not pickle): {exc}"
        ) from exc
    return points


def run_point_tasks(
    tasks: list[PointTask],
    *,
    n_workers: int = 1,
    batch_size: int = 128,
    shard_shots: int | None = None,
    mp_context: str | None = None,
    shard_timeout: float | None = DEFAULT_SHARD_TIMEOUT,
    shard_retries: int = DEFAULT_SHARD_RETRIES,
    on_result=None,
    on_progress=None,
) -> dict:
    """Run a list of :class:`PointTask`\\ s through one worker pool.

    The general (per-point budgets, resumable) entry point of the
    engine; :func:`run_ler_parallel` and :func:`run_sweep` are thin
    wrappers that build uniform task lists.  ``batch_size`` and
    ``shard_shots`` act as defaults for tasks that leave their own
    ``None``.

    Returns ``{label: MonteCarloResult | None}`` in task order, where
    the result merges only the **newly computed** shard chunks (shards
    ``start_shard`` onward, up to the adaptive stop).  A task whose
    prior counters already satisfy its target — or whose ``start_shard``
    consumes the whole budget — contributes ``None``: zero new shots.

    ``on_result(label, result)`` — when given — is invoked in the
    calling process the moment each task's merged result becomes final,
    while the remaining tasks are still decoding.  The sweep layer uses
    it to persist completed points immediately, so an interrupted
    multi-point run keeps everything that finished.  An exception from
    the callback aborts the run.

    ``on_progress(done, total)`` — when given — is invoked in the
    calling process after every completed shard with the cumulative
    count of newly computed shards and the current planned total across
    all tasks.  ``total`` can *shrink* as adaptive targets stop tasks
    early; ``done == total`` exactly when the run finishes.  The CLI
    ``--progress`` flag and the decode service's telemetry loop share
    this signature.

    ``shard_retries`` bounds how many times a shard whose attempt blew
    through ``shard_timeout`` is re-dispatched to another worker before
    the run raises (see :func:`_run_tasks_pooled`); it only applies to
    the pooled path — the serial path has no hang watchdog.
    """
    if not tasks:
        raise ValueError("at least one point task is required")
    labels = [task.label for task in tasks]
    if len(set(labels)) != len(labels):
        raise ValueError("point task labels must be unique")
    if n_workers < 1:
        raise ValueError("n_workers must be positive")
    sizes_by_key = {}
    batch_by_key = {}
    roots_by_key = {}
    active: list[PointTask] = []
    out = dict.fromkeys(labels)
    for task in tasks:
        _validate_knobs(
            task.shots, n_workers,
            task.batch_size or batch_size, task.target_rse,
        )
        if task.start_shard < 0:
            raise ValueError("start_shard must be non-negative")
        task_batch = task.batch_size or batch_size
        task_shard = task.shard_shots or shard_shots or max(task_batch, 256)
        sizes = shard_sizes(task.shots, task_shard)
        already_satisfied = task.prior_shots > 0 and budget_satisfied(
            task.prior_failures, task.prior_shots,
            task.max_failures, task.target_rse,
        )
        if task.start_shard >= len(sizes) or already_satisfied:
            continue  # nothing left to compute for this task
        sizes_by_key[task.label] = sizes
        batch_by_key[task.label] = task_batch
        roots_by_key[task.label] = run_root(task.seed)
        active.append(task)
    if not active:
        return out

    if n_workers == 1:
        progress_state = {
            task.label: (
                0, len(sizes_by_key[task.label]) - task.start_shard
            )
            for task in active
        }

        def _serial_progress(label):
            def on_shard(controller):
                if on_progress is None:
                    return
                progress_state[label] = controller.progress()
                on_progress(
                    sum(d for d, _ in progress_state.values()),
                    sum(p for _, p in progress_state.values()),
                )
            return on_shard

        for task in active:
            result = _run_task_serial(
                task,
                sizes_by_key[task.label],
                roots_by_key[task.label],
                batch_by_key[task.label],
                on_shard=_serial_progress(task.label),
            )
            if on_result is not None:
                on_result(task.label, result)
            out[task.label] = result
        return out

    payload = _pickled_points(
        {task.label: (task.problem, task.decoder) for task in active}
    )
    pool = ProcessPoolExecutor(
        max_workers=n_workers,
        mp_context=_mp_context(mp_context),
        initializer=_init_worker,
        initargs=(payload,),
    )
    hung = True  # a raise below means workers are presumed wedged
    try:
        merged, hung_attempts = _run_tasks_pooled(
            pool, active, roots_by_key, sizes_by_key, batch_by_key,
            n_workers, shard_timeout, on_result=on_result,
            on_progress=on_progress, shard_retries=shard_retries,
        )
        hung = bool(hung_attempts)
    finally:
        _shutdown_pool(pool, hung=hung)
    out.update(merged)
    return out


def run_ler_parallel(
    problem: DecodingProblem,
    decoder,
    shots: int,
    seed,
    *,
    n_workers: int = 1,
    batch_size: int = 128,
    shard_shots: int | None = None,
    max_failures: int | None = None,
    target_rse: float | None = None,
    mp_context: str | None = None,
    shard_timeout: float | None = DEFAULT_SHARD_TIMEOUT,
    shard_retries: int = DEFAULT_SHARD_RETRIES,
    on_progress=None,
) -> MonteCarloResult:
    """Estimate a logical error rate with sharded (multi-process) shots.

    Parameters
    ----------
    decoder:
        Registry name, picklable factory, or :class:`Decoder` instance
        (see the module docstring).
    shots:
        Hard cap on the number of sampled shots.
    seed:
        Master seed — ``int``, ``SeedSequence`` or ``Generator``; see
        :func:`repro.sim.seeding.run_root`.
    n_workers:
        Worker processes.  ``1`` runs in-process (no pool, no pickling)
        and returns bit-identical results to any other worker count.
    shard_shots:
        Shots per shard (default ``max(batch_size, 256)``).  Part of
        the reproducibility contract: changing it changes the shard
        decomposition and therefore the sampled streams.
    max_failures:
        Adaptive allocation: stop once the completed shard prefix has
        this many failures (within one shard of the target).
    target_rse:
        Adaptive allocation: stop once the Wilson 95% interval's
        relative half-width ``(hi - lo) / (2 * LER)`` of the completed
        prefix drops to this value.
    shard_timeout:
        Seconds to wait for *any* shard to complete before presuming
        the running attempts hung (``None`` waits forever).  A hung
        shard is retried on another worker up to ``shard_retries``
        times — results stay bit-identical because whichever attempt
        completes first computes the same chunk — and the run raises
        only once a shard's retry budget is exhausted.
    on_progress:
        Optional ``f(done, total)`` shard-progress callback (see
        :func:`run_point_tasks`).
    """
    _validate_knobs(shots, n_workers, batch_size, target_rse)
    task = PointTask(
        label=0,
        problem=problem,
        decoder=decoder,
        shots=shots,
        seed=run_root(seed),
        max_failures=max_failures,
        target_rse=target_rse,
    )
    return run_point_tasks(
        [task],
        n_workers=n_workers,
        batch_size=batch_size,
        shard_shots=shard_shots,
        mp_context=mp_context,
        shard_timeout=shard_timeout,
        shard_retries=shard_retries,
        on_progress=on_progress,
    )[0]


def run_sweep(
    points,
    shots: int,
    seed,
    *,
    n_workers: int = 1,
    batch_size: int = 128,
    shard_shots: int | None = None,
    max_failures: int | None = None,
    target_rse: float | None = None,
    mp_context: str | None = None,
    shard_timeout: float | None = DEFAULT_SHARD_TIMEOUT,
    shard_retries: int = DEFAULT_SHARD_RETRIES,
    on_progress=None,
) -> dict[str, MonteCarloResult]:
    """Run many LER points through one persistent worker pool.

    ``points`` is ``{label: (problem, decoder_spec)}`` or an iterable
    of ``(label, problem, decoder_spec)`` triples.  Every point gets an
    independent master-seed child (by point order), the same shot
    budget and the same adaptive-stopping knobs; workers cache each
    point's materialised decoder, so an ``n``-point sweep pays decoder
    construction once per point per worker, not once per shard.  All
    points' shards share one interleaved dispatch window, so few-shard
    points do not serialise the sweep.

    Returns ``{label: MonteCarloResult}`` in point order.
    """
    if isinstance(points, dict):
        triples = [(k, p, d) for k, (p, d) in points.items()]
    else:
        triples = [tuple(t) for t in points]
    if not triples:
        raise ValueError("at least one sweep point is required")
    _validate_knobs(shots, n_workers, batch_size, target_rse)
    root = run_root(seed)
    roots = root.spawn(len(triples))
    tasks = [
        PointTask(
            label=label,
            problem=problem,
            decoder=spec,
            shots=shots,
            seed=point_root,
            max_failures=max_failures,
            target_rse=target_rse,
        )
        for (label, problem, spec), point_root in zip(triples, roots)
    ]
    return run_point_tasks(
        tasks,
        n_workers=n_workers,
        batch_size=batch_size,
        shard_shots=shard_shots,
        mp_context=mp_context,
        shard_timeout=shard_timeout,
        shard_retries=shard_retries,
        on_progress=on_progress,
    )

"""Sharded multi-process Monte-Carlo experiment engine.

The paper's headline evidence is Monte-Carlo: every LER point needs on
the order of 100 logical failures, and deep points (BB-288 at circuit
level) need millions of shots.  This engine fans batches of shots out
to a pool of **persistent worker processes**:

* the shot budget is cut into fixed-size *shards*;
* shard ``i`` derives its sampling and decoder RNG streams from the
  run's master seed via :mod:`repro.sim.seeding` — independent of the
  worker count, so a run is bit-reproducible for any ``n_workers``;
* each worker materialises its ``(problem, decoder)`` pair once and
  decodes whole shards, streaming :class:`MonteCarloResult`-shaped
  column chunks back to the controller;
* the controller merges chunks through :meth:`MonteCarloResult.merge`
  in shard order.

Adaptive shot allocation
------------------------
With ``max_failures`` or ``target_rse`` set, the controller keeps
dispatching shards until the *prefix* of completed shards (in shard
order) meets the target, then cancels outstanding shards.  The stopping
rule is evaluated on shard prefixes only, so the merged result — and
therefore every statistic derived from it — is identical for any
worker count and any completion timing; at most one shard of overshoot
past the shard where the target is reached.

Decoder specifications
----------------------
Workers need to build the decoder, so ``decoder`` may be

* a name from :data:`repro.decoders.registry.DECODER_REGISTRY`
  (resolved inside each worker),
* a picklable factory ``f(problem) -> Decoder`` (a module-level
  function; lambdas and closures do not pickle), or
* a :class:`~repro.decoders.base.Decoder` instance (pickled into each
  worker; its :meth:`~repro.decoders.base.Decoder.reseed` hook is
  invoked per shard, which is what makes sampling decoders
  reproducible).

:func:`repro.sim.monte_carlo.run_ler` is the ``n_workers = 1`` case of
this engine and shares every code path but the pool.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

import numpy as np

from repro.decoders.base import Decoder
from repro.problem import DecodingProblem
from repro.sim.monte_carlo import MonteCarloResult
from repro.sim.seeding import run_root, shard_streams
from repro.sim.stats import wilson_interval

__all__ = [
    "resolve_decoder",
    "run_ler_parallel",
    "run_sweep",
    "shard_sizes",
]

# Default wall-clock budget per shard before the controller declares
# the pool hung (a worker that died without reporting, a deadlocked
# fork).  Generous enough for paper-scale shards; ``None`` disables.
DEFAULT_SHARD_TIMEOUT = 600.0


def resolve_decoder(spec, problem: DecodingProblem) -> Decoder:
    """Materialise a decoder from a spec (name / factory / instance)."""
    if isinstance(spec, str):
        from repro.decoders.registry import get_decoder

        return get_decoder(spec, problem)
    if isinstance(spec, Decoder):
        return spec
    if callable(spec):
        return spec(problem)
    raise TypeError(
        f"decoder spec {spec!r} is neither a registry name, a factory "
        "callable, nor a Decoder instance"
    )


def shard_sizes(shots: int, shard_shots: int) -> list[int]:
    """Cut a shot budget into fixed-size shards (last one may be short).

    The decomposition depends only on ``(shots, shard_shots)`` — never
    on the worker count — which is the backbone of cross-worker-count
    reproducibility.
    """
    if shots < 1:
        raise ValueError("shots must be positive")
    if shard_shots < 1:
        raise ValueError("shard_shots must be positive")
    full, rest = divmod(shots, shard_shots)
    return [shard_shots] * full + ([rest] if rest else [])


def _decode_shard(
    problem: DecodingProblem,
    decoder: Decoder,
    shots: int,
    root: np.random.SeedSequence,
    shard: int,
    batch_size: int,
) -> MonteCarloResult:
    """Decode one shard; the unit of work shared by all worker counts."""
    sample_rng, decoder_rng = shard_streams(root, shard)
    decoder.reseed(decoder_rng)
    failures = 0
    initial = 0
    post = 0
    unconverged = 0
    iteration_chunks: list[np.ndarray] = []
    parallel_chunks: list[np.ndarray] = []
    for lo in range(0, shots, batch_size):
        batch = min(batch_size, shots - lo)
        errors = problem.sample_errors(batch, sample_rng)
        syndromes = problem.syndromes(errors)
        results = decoder.decode_many(syndromes)
        failures += int(problem.is_failure(errors, results.errors).sum())
        initial += results.n_initial
        post += results.n_post
        unconverged += results.n_unconverged
        iteration_chunks.append(results.iterations)
        parallel_chunks.append(results.parallel_iterations)
    return MonteCarloResult(
        problem_name=problem.name,
        decoder_name=getattr(decoder, "name", type(decoder).__name__),
        shots=shots,
        failures=failures,
        rounds=problem.rounds,
        initial_successes=initial,
        post_processed=post,
        unconverged=unconverged,
        iterations=np.concatenate(iteration_chunks),
        parallel_iterations=np.concatenate(parallel_chunks),
    )


# -- worker-process plumbing ----------------------------------------------

_WORKER_POINTS: dict = {}
_WORKER_CACHE: dict = {}


def _init_worker(points: dict) -> None:
    """Executor initializer: stash every point's (problem, spec) pair."""
    global _WORKER_POINTS, _WORKER_CACHE
    _WORKER_POINTS = points
    _WORKER_CACHE = {}


def _worker_shard(key, shard: int, shots: int, root, batch_size: int):
    """Task body: decode one shard of one sweep point."""
    pair = _WORKER_CACHE.get(key)
    if pair is None:
        problem, spec = _WORKER_POINTS[key]
        pair = (problem, resolve_decoder(spec, problem))
        _WORKER_CACHE[key] = pair
    problem, decoder = pair
    return shard, _decode_shard(
        problem, decoder, shots, root, shard, batch_size
    )


class _PrefixController:
    """Shard-prefix stopping rule shared by the serial and pooled paths.

    Feed completed shard chunks in any order; :attr:`stop_at` becomes
    the index of the first shard at which the *contiguous prefix* of
    results satisfies the failure / CI target.  Only chunks up to that
    shard enter the merge, so the outcome is independent of completion
    timing and worker count.
    """

    def __init__(self, n_shards, max_failures, target_rse):
        self.n_shards = n_shards
        self.max_failures = max_failures
        self.target_rse = target_rse
        self.chunks: dict[int, MonteCarloResult] = {}
        self.stop_at: int | None = None
        self._frontier = 0
        self._failures = 0
        self._shots = 0

    def add(self, shard: int, chunk: MonteCarloResult) -> None:
        self.chunks[shard] = chunk
        while self.stop_at is None and self._frontier in self.chunks:
            front = self.chunks[self._frontier]
            self._failures += front.failures
            self._shots += front.shots
            if self._satisfied():
                self.stop_at = self._frontier
            self._frontier += 1

    def _satisfied(self) -> bool:
        if (
            self.max_failures is not None
            and self._failures >= self.max_failures
        ):
            return True
        if self.target_rse is not None and self._failures > 0:
            p = self._failures / self._shots
            lo, hi = wilson_interval(self._failures, self._shots)
            if (hi - lo) / (2.0 * p) <= self.target_rse:
                return True
        return False

    @property
    def done(self) -> bool:
        """Whether no further shards can change the merged result."""
        if self.stop_at is not None:
            return True
        return self._frontier >= self.n_shards

    def next_needed(self, dispatched: int) -> int | None:
        """Next shard index worth dispatching, or ``None``."""
        if self.stop_at is not None or dispatched >= self.n_shards:
            return None
        return dispatched

    def merged(self) -> MonteCarloResult:
        last = self.stop_at if self.stop_at is not None else self.n_shards - 1
        ordered = [self.chunks[i] for i in range(last + 1)]
        return MonteCarloResult.merge(ordered)


def _validate_knobs(shots, n_workers, batch_size, target_rse):
    if shots < 1:
        raise ValueError("shots must be positive")
    if n_workers < 1:
        raise ValueError("n_workers must be positive")
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    if target_rse is not None and target_rse <= 0:
        raise ValueError("target_rse must be positive")


def _run_point_serial(
    problem, decoder, sizes, root, batch_size, max_failures, target_rse
) -> MonteCarloResult:
    controller = _PrefixController(len(sizes), max_failures, target_rse)
    for shard, shard_shots in enumerate(sizes):
        controller.add(
            shard,
            _decode_shard(
                problem, decoder, shard_shots, root, shard, batch_size
            ),
        )
        if controller.done:
            break
    return controller.merged()


def _run_points_pooled(
    pool,
    roots_by_key,
    sizes,
    batch_size,
    max_failures,
    target_rse,
    n_workers,
    shard_timeout,
) -> dict:
    """Drive every point's shards through one interleaved dispatch loop.

    Shards of all points share a single in-flight window, so a sweep
    whose points each have only a few shards (laptop-scale benchmarks)
    still keeps every worker busy across point boundaries instead of
    idling at each point's tail.  Each point keeps its own
    :class:`_PrefixController`, so results are identical to running the
    points one at a time.
    """
    order = list(roots_by_key)
    controllers = {
        key: _PrefixController(len(sizes), max_failures, target_rse)
        for key in order
    }
    dispatched = dict.fromkeys(order, 0)
    in_flight = {}
    # Keep the queue deep enough that workers never starve while the
    # controllers digest results, but shallow enough that an adaptive
    # stop wastes at most ~two rounds of shards.
    max_in_flight = 2 * n_workers

    def next_task():
        for key in order:
            nxt = controllers[key].next_needed(dispatched[key])
            if nxt is not None:
                return key, nxt
        return None

    while any(not c.done for c in controllers.values()):
        while len(in_flight) < max_in_flight:
            task = next_task()
            if task is None:
                break
            key, shard = task
            future = pool.submit(
                _worker_shard,
                key,
                shard,
                sizes[shard],
                roots_by_key[key],
                batch_size,
            )
            in_flight[future] = key
            dispatched[key] += 1
        if not in_flight:
            break
        completed, _ = wait(
            in_flight, timeout=shard_timeout, return_when=FIRST_COMPLETED
        )
        if not completed:
            for future in in_flight:
                future.cancel()
            raise RuntimeError(
                f"no shard completed within {shard_timeout:.0f}s — "
                "worker pool looks hung; raise shard_timeout (CLI "
                "--shard-timeout, bench REPRO_SHARD_TIMEOUT; 0 waits "
                "forever) if shards are legitimately this slow"
            )
        for future in completed:
            key = in_flight.pop(future)
            shard, chunk = future.result()
            controllers[key].add(shard, chunk)
    for future in in_flight:
        future.cancel()
    return {key: controllers[key].merged() for key in order}


def _mp_context(name: str | None):
    """Fork by default (cheap, inherits warm imports); fallback clean."""
    if name is not None:
        return mp.get_context(name)
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else None)


def _pickled_points(points: dict) -> dict:
    """Validate that every (problem, spec) pair survives pickling."""
    try:
        pickle.dumps(points)
    except Exception as exc:
        raise TypeError(
            "decoder spec or problem is not picklable for worker "
            "processes — pass a registry name or a module-level "
            f"factory instead (lambdas do not pickle): {exc}"
        ) from exc
    return points


def run_ler_parallel(
    problem: DecodingProblem,
    decoder,
    shots: int,
    seed,
    *,
    n_workers: int = 1,
    batch_size: int = 128,
    shard_shots: int | None = None,
    max_failures: int | None = None,
    target_rse: float | None = None,
    mp_context: str | None = None,
    shard_timeout: float | None = DEFAULT_SHARD_TIMEOUT,
) -> MonteCarloResult:
    """Estimate a logical error rate with sharded (multi-process) shots.

    Parameters
    ----------
    decoder:
        Registry name, picklable factory, or :class:`Decoder` instance
        (see the module docstring).
    shots:
        Hard cap on the number of sampled shots.
    seed:
        Master seed — ``int``, ``SeedSequence`` or ``Generator``; see
        :func:`repro.sim.seeding.run_root`.
    n_workers:
        Worker processes.  ``1`` runs in-process (no pool, no pickling)
        and returns bit-identical results to any other worker count.
    shard_shots:
        Shots per shard (default ``max(batch_size, 256)``).  Part of
        the reproducibility contract: changing it changes the shard
        decomposition and therefore the sampled streams.
    max_failures:
        Adaptive allocation: stop once the completed shard prefix has
        this many failures (within one shard of the target).
    target_rse:
        Adaptive allocation: stop once the Wilson 95% interval's
        relative half-width ``(hi - lo) / (2 * LER)`` of the completed
        prefix drops to this value.
    shard_timeout:
        Seconds to wait for *any* shard to complete before declaring
        the pool hung and raising (``None`` waits forever).
    """
    _validate_knobs(shots, n_workers, batch_size, target_rse)
    shard_shots = shard_shots or max(batch_size, 256)
    sizes = shard_sizes(shots, shard_shots)
    root = run_root(seed)

    if n_workers == 1:
        return _run_point_serial(
            problem,
            resolve_decoder(decoder, problem),
            sizes,
            root,
            batch_size,
            max_failures,
            target_rse,
        )

    points = _pickled_points({0: (problem, decoder)})
    with ProcessPoolExecutor(
        max_workers=n_workers,
        mp_context=_mp_context(mp_context),
        initializer=_init_worker,
        initargs=(points,),
    ) as pool:
        merged = _run_points_pooled(
            pool, {0: root}, sizes, batch_size, max_failures, target_rse,
            n_workers, shard_timeout,
        )
    return merged[0]


def run_sweep(
    points,
    shots: int,
    seed,
    *,
    n_workers: int = 1,
    batch_size: int = 128,
    shard_shots: int | None = None,
    max_failures: int | None = None,
    target_rse: float | None = None,
    mp_context: str | None = None,
    shard_timeout: float | None = DEFAULT_SHARD_TIMEOUT,
) -> dict[str, MonteCarloResult]:
    """Run many LER points through one persistent worker pool.

    ``points`` is ``{label: (problem, decoder_spec)}`` or an iterable
    of ``(label, problem, decoder_spec)`` triples.  Every point gets an
    independent master-seed child (by point order), the same shot
    budget and the same adaptive-stopping knobs; workers cache each
    point's materialised decoder, so an ``n``-point sweep pays decoder
    construction once per point per worker, not once per shard.  All
    points' shards share one interleaved dispatch window, so few-shard
    points do not serialise the sweep.

    Returns ``{label: MonteCarloResult}`` in point order.
    """
    if isinstance(points, dict):
        triples = [(k, p, d) for k, (p, d) in points.items()]
    else:
        triples = [tuple(t) for t in points]
    if not triples:
        raise ValueError("at least one sweep point is required")
    labels = [t[0] for t in triples]
    if len(set(labels)) != len(labels):
        raise ValueError("sweep point labels must be unique")
    _validate_knobs(shots, n_workers, batch_size, target_rse)
    shard_shots = shard_shots or max(batch_size, 256)
    sizes = shard_sizes(shots, shard_shots)
    root = run_root(seed)
    roots = root.spawn(len(triples))

    out: dict[str, MonteCarloResult] = {}
    if n_workers == 1:
        for (label, problem, spec), point_root in zip(triples, roots):
            out[label] = _run_point_serial(
                problem,
                resolve_decoder(spec, problem),
                sizes,
                point_root,
                batch_size,
                max_failures,
                target_rse,
            )
        return out

    payload = _pickled_points(
        {label: (problem, spec) for label, problem, spec in triples}
    )
    roots_by_key = {
        label: point_root
        for (label, _, _), point_root in zip(triples, roots)
    }
    with ProcessPoolExecutor(
        max_workers=n_workers,
        mp_context=_mp_context(mp_context),
        initializer=_init_worker,
        initargs=(payload,),
    ) as pool:
        return _run_points_pooled(
            pool, roots_by_key, sizes, batch_size, max_failures,
            target_rse, n_workers, shard_timeout,
        )

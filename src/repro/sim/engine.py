"""Sharded multi-process Monte-Carlo experiment engine.

The paper's headline evidence is Monte-Carlo: every LER point needs on
the order of 100 logical failures, and deep points (BB-288 at circuit
level) need millions of shots.  This engine fans batches of shots out
to a pool of **persistent worker processes**:

* the shot budget is cut into fixed-size *shards*;
* shard ``i`` derives its sampling and decoder RNG streams from the
  run's master seed via :mod:`repro.sim.seeding` — independent of the
  worker count, so a run is bit-reproducible for any ``n_workers``;
* each worker materialises its ``(problem, decoder)`` pair once and
  decodes whole shards, streaming :class:`MonteCarloResult`-shaped
  column chunks back to the controller;
* the controller merges chunks through :meth:`MonteCarloResult.merge`
  in shard order.

Adaptive shot allocation
------------------------
With ``max_failures`` or ``target_rse`` set, the controller keeps
dispatching shards until the *prefix* of completed shards (in shard
order) meets the target, then cancels outstanding shards.  The stopping
rule is evaluated on shard prefixes only, so the merged result — and
therefore every statistic derived from it — is identical for any
worker count and any completion timing; at most one shard of overshoot
past the shard where the target is reached.

Resumable point tasks
---------------------
:func:`run_point_tasks` is the general entry point: each
:class:`PointTask` carries its own budget (``shots`` /
``max_failures`` / ``target_rse`` / ``shard_shots`` / ``batch_size``)
and an optional resume offset (``start_shard`` plus the prior prefix's
cumulative counters).  Because shard ``i``'s streams depend only on the
task's seed root and ``i``, a resumed task computes exactly the shards
a fresh, bigger-budget run would have appended — the property the
persistent sweep store (:mod:`repro.sweeps`) uses to merge incremental
shots into stored results bit-identically.  :func:`run_ler_parallel`
and :func:`run_sweep` are uniform-task wrappers.

Fault tolerance
---------------
Three cooperating mechanisms keep a run alive — and its results
bit-identical — under worker failure (see ``docs/architecture.md``,
"Surviving failures"):

* **Mid-point checkpointing** — ``on_checkpoint`` +
  ``checkpoint_every`` stream each task's contiguous shard prefix out
  of the run as it solidifies, so a killed *run* loses at most the
  in-flight shards (the sweep layer persists every checkpoint
  atomically and resumes from the cursor).
* **Elastic worker pool** — workers live in a
  :class:`repro.sim.pool.PoolController`: a worker process that dies
  or wedges is killed and respawned (up to ``max_worker_restarts`` per
  run) and its shard recomputed on a healthy worker; the pool can also
  be resized between shard dispatches (``on_pool`` exposes the
  controller).
* **Hang watchdog** — a shard attempt that blows ``shard_timeout`` is
  presumed wedged: its worker is reclaimed on the spot and the shard
  retried on a fresh worker, up to ``shard_retries`` times per shard.

Attempts are deterministic (shard streams depend only on the seed root
and index), so whichever attempt of a shard completes first yields the
canonical chunk; late duplicates are counter-checked and dropped.  The
fault-injection harness (:mod:`repro.devtools.chaos`, armed via the
``REPRO_CHAOS`` environment variable) drives exactly these paths with
seeded kill/hang/delay schedules.

Decoder specifications
----------------------
Workers need to build the decoder, so ``decoder`` may be

* a name from :data:`repro.decoders.registry.DECODER_REGISTRY`
  (resolved inside each worker),
* a picklable factory ``f(problem) -> Decoder`` (a module-level
  function; lambdas and closures do not pickle), or
* a :class:`~repro.decoders.base.Decoder` instance (pickled into each
  worker; its :meth:`~repro.decoders.base.Decoder.reseed` hook is
  invoked per shard, which is what makes sampling decoders
  reproducible).

:func:`repro.sim.monte_carlo.run_ler` is the ``n_workers = 1`` case of
this engine and shares every code path but the pool.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
from concurrent.futures import FIRST_COMPLETED, wait
from dataclasses import dataclass

import numpy as np

from repro.decoders.base import Decoder
from repro.problem import DecodingProblem
from repro.sim.monte_carlo import MonteCarloResult
from repro.sim.pool import (
    DEFAULT_MAX_WORKER_RESTARTS,
    PoolController,
    WorkerDiedError,
)
from repro.sim.seeding import run_root, shard_streams
from repro.sim.stats import wilson_interval

__all__ = [
    "DEFAULT_MAX_WORKER_RESTARTS",
    "DEFAULT_SHARD_RETRIES",
    "DEFAULT_SHARD_TIMEOUT",
    "PointTask",
    "PoolController",
    "budget_satisfied",
    "resolve_decoder",
    "run_ler_parallel",
    "run_point_tasks",
    "run_sweep",
    "shard_sizes",
]

# Default wall-clock budget per shard before the controller declares
# the pool hung (a worker that died without reporting, a deadlocked
# fork).  Generous enough for paper-scale shards; ``None`` disables.
DEFAULT_SHARD_TIMEOUT = 600.0

# How many times a presumed-hung shard is re-dispatched before the run
# gives up.  A retry is handed to the pool's task queue, which only
# idle workers drain — the hung worker is still occupied by the stale
# attempt — so a retry lands on a different worker by construction.
DEFAULT_SHARD_RETRIES = 2


def resolve_decoder(spec, problem: DecodingProblem) -> Decoder:
    """Materialise a decoder from a spec (name / factory / instance).

    A :class:`~repro.spec.ProblemSpec` also resolves — to its own
    configured decoder factory applied to ``problem`` — so engine call
    sites can hand the canonical problem plane straight through.
    """
    from repro.spec import ProblemSpec

    if isinstance(spec, ProblemSpec):
        return spec.decoder_factory()(problem)
    if isinstance(spec, str):
        from repro.decoders.registry import get_decoder

        return get_decoder(spec, problem)
    if isinstance(spec, Decoder):
        return spec
    if callable(spec):
        return spec(problem)
    raise TypeError(
        f"decoder spec {spec!r} is neither a registry name, a factory "
        "callable, nor a Decoder instance"
    )


def shard_sizes(shots: int, shard_shots: int) -> list[int]:
    """Cut a shot budget into fixed-size shards (last one may be short).

    The decomposition depends only on ``(shots, shard_shots)`` — never
    on the worker count — which is the backbone of cross-worker-count
    reproducibility.
    """
    if shots < 1:
        raise ValueError("shots must be positive")
    if shard_shots < 1:
        raise ValueError("shard_shots must be positive")
    full, rest = divmod(shots, shard_shots)
    return [shard_shots] * full + ([rest] if rest else [])


def _decode_shard(
    problem: DecodingProblem,
    decoder: Decoder,
    shots: int,
    root: np.random.SeedSequence,
    shard: int,
    batch_size: int,
) -> MonteCarloResult:
    """Decode one shard; the unit of work shared by all worker counts."""
    sample_rng, decoder_rng = shard_streams(root, shard)
    decoder.reseed(decoder_rng)
    failures = 0
    initial = 0
    post = 0
    unconverged = 0
    iteration_chunks: list[np.ndarray] = []
    parallel_chunks: list[np.ndarray] = []
    for lo in range(0, shots, batch_size):
        batch = min(batch_size, shots - lo)
        errors = problem.sample_errors(batch, sample_rng)
        syndromes = problem.syndromes(errors)
        results = decoder.decode_many(syndromes)
        failures += int(problem.is_failure(errors, results.errors).sum())
        initial += results.n_initial
        post += results.n_post
        unconverged += results.n_unconverged
        iteration_chunks.append(results.iterations)
        parallel_chunks.append(results.parallel_iterations)
    return MonteCarloResult(
        problem_name=problem.name,
        decoder_name=getattr(decoder, "name", type(decoder).__name__),
        shots=shots,
        failures=failures,
        rounds=problem.rounds,
        initial_successes=initial,
        post_processed=post,
        unconverged=unconverged,
        iterations=np.concatenate(iteration_chunks),
        parallel_iterations=np.concatenate(parallel_chunks),
    )


# -- worker-process plumbing ----------------------------------------------

_WORKER_POINTS: dict = {}
_WORKER_CACHE: dict = {}
_WORKER_CHAOS = None


def _init_worker(points: dict) -> None:
    """Executor initializer: stash every point's (problem, spec) pair.

    Also arms the fault-injection hook when ``REPRO_CHAOS`` names a
    schedule file (see :mod:`repro.devtools.chaos`) — the import is
    lazy and the hook is ``None`` in production runs, so the chaos
    machinery costs nothing unless explicitly requested.
    """
    global _WORKER_POINTS, _WORKER_CACHE, _WORKER_CHAOS
    _WORKER_POINTS = points
    _WORKER_CACHE = {}
    _WORKER_CHAOS = None
    if os.environ.get("REPRO_CHAOS"):
        from repro.devtools.chaos import injector_from_env

        _WORKER_CHAOS = injector_from_env()


def _worker_shard(key, shard: int, shots: int, root, batch_size: int):
    """Task body: decode one shard of one sweep point."""
    if _WORKER_CHAOS is not None:
        _WORKER_CHAOS.fire(key, shard)
    pair = _WORKER_CACHE.get(key)
    if pair is None:
        problem, spec = _WORKER_POINTS[key]
        pair = (problem, resolve_decoder(spec, problem))
        _WORKER_CACHE[key] = pair
    problem, decoder = pair
    return shard, _decode_shard(
        problem, decoder, shots, root, shard, batch_size
    )


def budget_satisfied(
    failures: int,
    shots: int,
    max_failures: int | None,
    target_rse: float | None,
) -> bool:
    """Whether accumulated ``(failures, shots)`` meet the adaptive target.

    ``max_failures`` is the paper's ≥-N-failures rule; ``target_rse``
    bounds the Wilson 95% interval's relative half-width
    ``(hi - lo) / (2 · LER)``.  This is the *single* stopping predicate
    of the engine — the sweep store evaluates it on persisted results to
    decide whether a point is already resolved, so stored and live runs
    can never disagree about resolution.
    """
    if max_failures is not None and failures >= max_failures:
        return True
    if target_rse is not None and failures > 0 and shots > 0:
        p = failures / shots
        lo, hi = wilson_interval(failures, shots)
        if (hi - lo) / (2.0 * p) <= target_rse:
            return True
    return False


@dataclass
class PointTask:
    """One resumable unit of sweep work: a (problem, decoder) point.

    The task-level API generalises :func:`run_ler_parallel` in two ways
    the declarative sweep layer (:mod:`repro.sweeps`) needs:

    * **per-point budgets** — each task carries its own ``shots`` cap,
      ``max_failures`` / ``target_rse`` targets, ``shard_shots`` and
      ``batch_size`` (``None`` falls back to the run-level default);
    * **resume** — ``start_shard`` says how many leading shards a
      previous run already computed; their cumulative ``prior_failures``
      / ``prior_shots`` seed the stopping rule, so a resumed run stops
      at exactly the shard a fresh, bigger-budget run would have
      stopped at, and the new chunks merge bit-identically onto the
      stored prefix.

    ``seed`` may be anything :func:`repro.sim.seeding.run_root`
    accepts; shard ``i`` of this task always derives its streams from
    that root's ``i``-th child, whether or not shards 0..start-1 are
    re-run.
    """

    label: object
    problem: DecodingProblem
    decoder: object
    shots: int
    seed: object
    max_failures: int | None = None
    target_rse: float | None = None
    start_shard: int = 0
    prior_failures: int = 0
    prior_shots: int = 0
    shard_shots: int | None = None
    batch_size: int | None = None


class _PrefixController:
    """Shard-prefix stopping rule shared by the serial and pooled paths.

    Feed completed shard chunks in any order; :attr:`stop_at` becomes
    the index of the first shard at which the *contiguous prefix* of
    results satisfies the failure / CI target.  Only chunks up to that
    shard enter the merge, so the outcome is independent of completion
    timing and worker count.

    With ``start_shard > 0`` the controller resumes an earlier run:
    shards below ``start_shard`` are never dispatched, their cumulative
    ``(prior_failures, prior_shots)`` pre-load the stopping counters,
    and :meth:`merged` returns only the **new** chunks.
    """

    def __init__(
        self,
        n_shards,
        max_failures,
        target_rse,
        *,
        start_shard: int = 0,
        prior_failures: int = 0,
        prior_shots: int = 0,
    ):
        self.n_shards = n_shards
        self.max_failures = max_failures
        self.target_rse = target_rse
        self.start_shard = start_shard
        self.chunks: dict[int, MonteCarloResult] = {}
        self.stop_at: int | None = None
        self._frontier = start_shard
        self._failures = prior_failures
        self._shots = prior_shots
        self._done = 0  # chunks counting toward progress (see add)
        self._ckpt_cursor = start_shard  # checkpoint drain position

    def add(self, shard: int, chunk: MonteCarloResult) -> None:
        prior = self.chunks.get(shard)
        if prior is not None:
            # A retried shard can complete twice (the stale attempt
            # eventually wakes up).  Attempts are deterministic — shard
            # streams depend only on the seed root and index — so the
            # duplicate must be bit-identical; check the cheap counters
            # before dropping it.  A mismatch means the determinism
            # contract is broken (a decoder sampling outside its
            # reseeded stream, torn worker state) and neither copy can
            # be trusted — keeping the first silently would corrupt the
            # merged result.
            if (chunk.failures, chunk.shots) != (
                prior.failures, prior.shots
            ):
                raise RuntimeError(
                    f"shard {shard} completed twice with diverging "
                    f"counters: kept failures={prior.failures} "
                    f"shots={prior.shots}, duplicate "
                    f"failures={chunk.failures} shots={chunk.shots} — "
                    "retried attempts must be bit-identical (decoder "
                    "sampling outside its reseeded stream?); results "
                    "cannot be trusted"
                )
            return
        self.chunks[shard] = chunk
        if self.stop_at is None:
            self._done += 1
        while self.stop_at is None and self._frontier in self.chunks:
            front = self.chunks[self._frontier]
            self._failures += front.failures
            self._shots += front.shots
            if budget_satisfied(
                self._failures, self._shots,
                self.max_failures, self.target_rse,
            ):
                self.stop_at = self._frontier
                # One-off correction: overshoot chunks beyond the stop
                # no longer count toward progress (the prefix up to
                # ``stop_at`` is complete by construction).
                self._done = self.stop_at + 1 - self.start_shard
            self._frontier += 1

    @property
    def done(self) -> bool:
        """Whether no further shards can change the merged result."""
        if self.stop_at is not None:
            return True
        return self._frontier >= self.n_shards

    def next_needed(self, dispatched: int) -> int | None:
        """Next shard index worth dispatching, or ``None``."""
        if self.stop_at is not None or dispatched >= self.n_shards:
            return None
        return dispatched

    def merged(self) -> MonteCarloResult:
        last = self.stop_at if self.stop_at is not None else self.n_shards - 1
        ordered = [self.chunks[i] for i in range(self.start_shard, last + 1)]
        return MonteCarloResult.merge(ordered)

    def _counted_end(self) -> int:
        """One past the last shard whose counters are committed.

        With the stopping rule triggered this is the stop shard (prefix
        complete by construction); otherwise it is the contiguous
        frontier — shards beyond it may exist in :attr:`chunks` but are
        not yet part of any durable prefix.
        """
        if self.stop_at is not None:
            return self.stop_at + 1
        return self._frontier

    def checkpoint_pending(self) -> int:
        """Contiguous counted shards not yet drained by a checkpoint."""
        return self._counted_end() - self._ckpt_cursor

    def drain_checkpoint(self):
        """``(shards_done, failures, shots, chunks)`` for persistence.

        ``chunks`` is the new contiguous slice since the last drain, in
        shard order; ``shards_done`` is the absolute cursor (one past
        the last drained shard) and ``failures`` / ``shots`` are the
        **cumulative** prefix counters including resumed priors — the
        exact triple the sweep store records, so a crash after the
        persist resumes as if the run had started there.  Draining only
        advances the checkpoint cursor: :meth:`merged` still returns
        every newly computed chunk.
        """
        end = self._counted_end()
        chunks = [self.chunks[i] for i in range(self._ckpt_cursor, end)]
        self._ckpt_cursor = end
        return end, self._failures, self._shots, chunks

    def progress(self) -> tuple[int, int]:
        """``(done, planned)`` newly computed shards for this task.

        ``planned`` shrinks when the adaptive rule stops the task early
        (shards past ``stop_at`` are cancelled, not computed), so a
        progress bar driven by summed controller progress converges to
        ``done == planned`` exactly when the run finishes.  O(1):
        the counter is maintained incrementally by :meth:`add`, so a
        per-shard progress callback costs constant work per shard even
        on paper-scale runs.
        """
        if self.stop_at is not None:
            planned = self.stop_at + 1 - self.start_shard
        else:
            planned = self.n_shards - self.start_shard
        return min(self._done, planned), planned


def _validate_knobs(shots, n_workers, batch_size, target_rse):
    if shots < 1:
        raise ValueError("shots must be positive")
    if n_workers < 1:
        raise ValueError("n_workers must be positive")
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    if target_rse is not None and target_rse <= 0:
        raise ValueError("target_rse must be positive")


def _controller_for(task: PointTask, n_shards: int) -> _PrefixController:
    return _PrefixController(
        n_shards,
        task.max_failures,
        task.target_rse,
        start_shard=task.start_shard,
        prior_failures=task.prior_failures,
        prior_shots=task.prior_shots,
    )


def _run_task_serial(
    task: PointTask,
    sizes,
    root,
    batch_size,
    on_shard=None,
    on_checkpoint=None,
    checkpoint_every: int | None = None,
) -> MonteCarloResult:
    decoder = resolve_decoder(task.decoder, task.problem)
    controller = _controller_for(task, len(sizes))
    for shard in range(task.start_shard, len(sizes)):
        controller.add(
            shard,
            _decode_shard(
                task.problem, decoder, sizes[shard], root, shard,
                batch_size,
            ),
        )
        if on_shard is not None:
            on_shard(controller)
        if controller.done:
            break
        if (
            on_checkpoint is not None
            and checkpoint_every is not None
            and controller.checkpoint_pending() >= checkpoint_every
        ):
            shards_done, failures, shots, chunks = (
                controller.drain_checkpoint()
            )
            on_checkpoint(task.label, shards_done, failures, shots, chunks)
    return controller.merged()


def _run_tasks_pooled(
    pool: PoolController,
    tasks: list[PointTask],
    roots_by_key,
    sizes_by_key,
    batch_by_key,
    shard_timeout,
    on_result=None,
    on_progress=None,
    shard_retries: int = DEFAULT_SHARD_RETRIES,
    on_checkpoint=None,
    checkpoint_every: int | None = None,
) -> dict:
    """Drive every task's shards through one interleaved dispatch loop.

    Shards of all points share a single in-flight window, so a sweep
    whose points each have only a few shards (laptop-scale benchmarks)
    still keeps every worker busy across point boundaries instead of
    idling at each point's tail.  Each point keeps its own
    :class:`_PrefixController`, so results are identical to running the
    points one at a time.

    Worker-death recovery: a shard whose worker process died surfaces
    as :class:`WorkerDiedError` on exactly that future; the pool has
    already respawned a replacement (within ``pool.max_restarts``), and
    the shard is simply re-submitted — deterministic shard streams make
    the recomputed chunk bit-identical.  The run fails loudly only when
    deaths outpace the restart budget and no live worker remains.

    Hang recovery: when no shard completes within ``shard_timeout``,
    every *running* in-flight attempt is presumed hung; its worker is
    killed and replaced via :meth:`PoolController.kill_task` and the
    shard is re-dispatched (up to ``shard_retries`` times per shard),
    landing on a fresh worker immediately instead of queueing behind
    the wedged one.  Whichever attempt of a shard finishes first wins;
    late duplicates are counter-checked and dropped by the controller,
    so the merged result is bit-identical to an un-hung run.

    Checkpointing: with ``on_checkpoint`` and ``checkpoint_every`` set,
    each task's contiguous counted prefix is drained every
    ``checkpoint_every`` shards and handed to the callback as
    ``(label, shards_done, failures, shots, chunks)`` — cumulative
    counters, new chunks only (see
    :meth:`_PrefixController.drain_checkpoint`).  A task's final merged
    result still contains **all** of its new chunks; checkpoints are a
    crash-durability side channel, not a hand-off.
    """
    order = [task.label for task in tasks]
    controllers = {
        task.label: _controller_for(task, len(sizes_by_key[task.label]))
        for task in tasks
    }
    dispatched = {task.label: task.start_shard for task in tasks}
    reported: set = set()

    def _maybe_report(key) -> None:
        # Fire the completion callback the moment a point's merged
        # result is final, while other points are still decoding — the
        # hook the sweep layer uses to persist each point as it lands.
        if on_result is None or key in reported:
            return
        controller = controllers[key]
        if controller.done:
            reported.add(key)
            on_result(key, controller.merged())

    def _maybe_checkpoint(key) -> None:
        # Stream the solidified prefix out mid-task.  Completed tasks
        # are excluded: their full result goes through _maybe_report,
        # and persisting both would do the same write twice.
        if on_checkpoint is None or checkpoint_every is None:
            return
        controller = controllers[key]
        if controller.done:
            return
        if controller.checkpoint_pending() < checkpoint_every:
            return
        shards_done, failures, shots, chunks = (
            controller.drain_checkpoint()
        )
        on_checkpoint(key, shards_done, failures, shots, chunks)

    def _report_progress() -> None:
        if on_progress is None:
            return
        done = 0
        planned = 0
        for controller in controllers.values():
            d, p = controller.progress()
            done += d
            planned += p
        on_progress(done, planned)

    in_flight: dict = {}  # Future -> (key, shard)
    retries: dict = {}    # (key, shard) -> retry attempts used

    def _submit(key, shard) -> None:
        future = pool.submit(
            _worker_shard,
            key,
            shard,
            sizes_by_key[key][shard],
            roots_by_key[key],
            batch_by_key[key],
        )
        in_flight[future] = (key, shard)

    def _no_workers_left(key, shard, cause) -> RuntimeError:
        return RuntimeError(
            f"worker running {key}[shard {shard}] was lost and the "
            f"restart budget ({pool.max_restarts} respawns, "
            f"{pool.restarts_used} used) is exhausted with no live "
            "worker left — raise --max-worker-restarts if the host is "
            f"flaky, or investigate the crashes: {cause}"
        )

    def next_task():
        for key in order:
            nxt = controllers[key].next_needed(dispatched[key])
            if nxt is not None:
                return key, nxt
        return None

    while any(not c.done for c in controllers.values()):
        # The window tracks the live worker count, so a resize (or an
        # un-respawned death) is reflected at the next refill.
        max_in_flight = 2 * max(1, pool.n_alive)
        while len(in_flight) < max_in_flight:
            item = next_task()
            if item is None:
                break
            key, shard = item
            _submit(key, shard)
            dispatched[key] += 1
        if not in_flight:
            break
        completed, _ = wait(
            in_flight, timeout=shard_timeout, return_when=FIRST_COMPLETED
        )
        if not completed:
            # Watchdog fired: presume the *running* attempts hung
            # (queued ones are merely waiting behind them), reclaim
            # their workers, and retry each such shard on the fresh
            # capacity — within the per-shard retry budget.
            hung = [
                (future, pair) for future, pair in in_flight.items()
                if future.running()
            ] or list(in_flight.items())
            exhausted = []
            resubmitted = 0
            for future, (key, shard) in sorted(
                hung, key=lambda it: (order.index(it[1][0]), it[1][1])
            ):
                used = retries.get((key, shard), 0)
                if used >= shard_retries:
                    exhausted.append((key, shard, used + 1))
                    continue
                retries[(key, shard)] = used + 1
                # Kill the wedged worker now so the retry starts
                # immediately on its replacement instead of queueing
                # behind a permanently-occupied slot.
                pool.kill_task(future)
                del in_flight[future]
                _submit(key, shard)
                resubmitted += 1
            if resubmitted and pool.n_alive == 0:
                key, shard, _ = (
                    exhausted[0] if exhausted
                    else (*next(iter(in_flight.values())), 0)
                )
                raise _no_workers_left(
                    key, shard, "every replacement worker wedged too"
                )
            if resubmitted == 0:
                for future in in_flight:
                    future.cancel()
                shards = "; ".join(
                    f"{key}[shard {shard}] after {attempts} attempt(s) "
                    f"of {shard_timeout:.0f}s each"
                    for key, shard, attempts in exhausted
                )
                raise RuntimeError(
                    f"no shard completed within {shard_timeout:.0f}s "
                    f"and the retry budget ({shard_retries} per shard) "
                    f"is exhausted — {shards} — worker pool looks "
                    "hung; raise shard_timeout (CLI --shard-timeout, "
                    "bench REPRO_SHARD_TIMEOUT; 0 waits forever) if "
                    "shards are legitimately this slow"
                )
            continue
        for future in completed:
            key, submitted_shard = in_flight.pop(future)
            try:
                shard, chunk = future.result()
            except WorkerDiedError as exc:
                # The worker died mid-shard (crash, OOM kill, injected
                # fault).  The pool respawned a replacement within its
                # budget; recompute the shard there — deterministic
                # streams make the redo bit-identical.
                if pool.n_alive == 0:
                    raise _no_workers_left(
                        key, submitted_shard, exc
                    ) from exc
                _submit(key, submitted_shard)
                continue
            controllers[key].add(shard, chunk)
            _maybe_report(key)
            _maybe_checkpoint(key)
        _report_progress()
    for future in in_flight:
        future.cancel()
    for key in order:
        _maybe_report(key)
    return {key: controllers[key].merged() for key in order}


def _mp_context(name: str | None):
    """Fork by default (cheap, inherits warm imports); fallback clean."""
    if name is not None:
        return mp.get_context(name)
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else None)


def _pickled_points(points: dict) -> dict:
    """Validate that every (problem, spec) pair survives pickling."""
    try:
        pickle.dumps(points)
    except Exception as exc:
        raise TypeError(
            "decoder spec or problem is not picklable for worker "
            "processes — pass a registry name or a module-level "
            f"factory instead (lambdas do not pickle): {exc}"
        ) from exc
    return points


def run_point_tasks(
    tasks: list[PointTask],
    *,
    n_workers: int = 1,
    batch_size: int = 128,
    shard_shots: int | None = None,
    mp_context: str | None = None,
    shard_timeout: float | None = DEFAULT_SHARD_TIMEOUT,
    shard_retries: int = DEFAULT_SHARD_RETRIES,
    max_worker_restarts: int = DEFAULT_MAX_WORKER_RESTARTS,
    on_result=None,
    on_progress=None,
    on_checkpoint=None,
    checkpoint_every: int | None = None,
    on_pool=None,
) -> dict:
    """Run a list of :class:`PointTask`\\ s through one worker pool.

    The general (per-point budgets, resumable) entry point of the
    engine; :func:`run_ler_parallel` and :func:`run_sweep` are thin
    wrappers that build uniform task lists.  ``batch_size`` and
    ``shard_shots`` act as defaults for tasks that leave their own
    ``None``.

    Returns ``{label: MonteCarloResult | None}`` in task order, where
    the result merges only the **newly computed** shard chunks (shards
    ``start_shard`` onward, up to the adaptive stop).  A task whose
    prior counters already satisfy its target — or whose ``start_shard``
    consumes the whole budget — contributes ``None``: zero new shots.

    ``on_result(label, result)`` — when given — is invoked in the
    calling process the moment each task's merged result becomes final,
    while the remaining tasks are still decoding.  The sweep layer uses
    it to persist completed points immediately, so an interrupted
    multi-point run keeps everything that finished.  An exception from
    the callback aborts the run.

    ``on_progress(done, total)`` — when given — is invoked in the
    calling process after every completed shard with the cumulative
    count of newly computed shards and the current planned total across
    all tasks.  ``total`` can *shrink* as adaptive targets stop tasks
    early; ``done == total`` exactly when the run finishes.  The CLI
    ``--progress`` flag and the decode service's telemetry loop share
    this signature.

    ``shard_retries`` bounds how many times a shard whose attempt blew
    through ``shard_timeout`` is re-dispatched to another worker before
    the run raises (see :func:`_run_tasks_pooled`); it only applies to
    the pooled path — the serial path has no hang watchdog.
    ``max_worker_restarts`` is the elastic pool's respawn budget for
    dead or wedged worker processes (also pooled-path only).

    ``on_checkpoint(label, shards_done, failures, shots, chunks)`` —
    when given together with ``checkpoint_every`` — fires in the
    calling process whenever a task's contiguous shard prefix has
    advanced ``checkpoint_every`` shards past the last checkpoint:
    ``chunks`` are the newly solidified chunks in shard order,
    ``shards_done`` the absolute prefix cursor and ``failures`` /
    ``shots`` the cumulative prefix counters (priors included).  The
    sweep layer persists these mid-task so a crashed run loses at most
    the in-flight shards.  Works on both the serial and pooled paths.

    ``on_pool(pool)`` — when given — receives the
    :class:`PoolController` right after construction (pooled path
    only), giving callers a handle for runtime ``resize()`` and
    restart-budget introspection while the run is in flight.
    """
    if checkpoint_every is not None and checkpoint_every < 1:
        raise ValueError("checkpoint_every must be positive")
    if max_worker_restarts < 0:
        raise ValueError("max_worker_restarts must be non-negative")
    if not tasks:
        raise ValueError("at least one point task is required")
    labels = [task.label for task in tasks]
    if len(set(labels)) != len(labels):
        raise ValueError("point task labels must be unique")
    if n_workers < 1:
        raise ValueError("n_workers must be positive")
    sizes_by_key = {}
    batch_by_key = {}
    roots_by_key = {}
    active: list[PointTask] = []
    out = dict.fromkeys(labels)
    for task in tasks:
        _validate_knobs(
            task.shots, n_workers,
            task.batch_size or batch_size, task.target_rse,
        )
        if task.start_shard < 0:
            raise ValueError("start_shard must be non-negative")
        task_batch = task.batch_size or batch_size
        task_shard = task.shard_shots or shard_shots or max(task_batch, 256)
        sizes = shard_sizes(task.shots, task_shard)
        already_satisfied = task.prior_shots > 0 and budget_satisfied(
            task.prior_failures, task.prior_shots,
            task.max_failures, task.target_rse,
        )
        if task.start_shard >= len(sizes) or already_satisfied:
            continue  # nothing left to compute for this task
        sizes_by_key[task.label] = sizes
        batch_by_key[task.label] = task_batch
        roots_by_key[task.label] = run_root(task.seed)
        active.append(task)
    if not active:
        return out

    if n_workers == 1:
        progress_state = {
            task.label: (
                0, len(sizes_by_key[task.label]) - task.start_shard
            )
            for task in active
        }

        def _serial_progress(label):
            def on_shard(controller):
                if on_progress is None:
                    return
                progress_state[label] = controller.progress()
                on_progress(
                    sum(d for d, _ in progress_state.values()),
                    sum(p for _, p in progress_state.values()),
                )
            return on_shard

        for task in active:
            result = _run_task_serial(
                task,
                sizes_by_key[task.label],
                roots_by_key[task.label],
                batch_by_key[task.label],
                on_shard=_serial_progress(task.label),
                on_checkpoint=on_checkpoint,
                checkpoint_every=checkpoint_every,
            )
            if on_result is not None:
                on_result(task.label, result)
            out[task.label] = result
        return out

    payload = _pickled_points(
        {task.label: (task.problem, task.decoder) for task in active}
    )
    pool = PoolController(
        n_workers,
        mp_context=_mp_context(mp_context),
        initializer=_init_worker,
        initargs=(payload,),
        max_restarts=max_worker_restarts,
    )
    if on_pool is not None:
        on_pool(pool)
    try:
        merged = _run_tasks_pooled(
            pool, active, roots_by_key, sizes_by_key, batch_by_key,
            shard_timeout, on_result=on_result,
            on_progress=on_progress, shard_retries=shard_retries,
            on_checkpoint=on_checkpoint,
            checkpoint_every=checkpoint_every,
        )
    finally:
        # PoolController.shutdown kills still-busy workers (their
        # results are void by now) and joins everything — safe whether
        # the run finished, raised, or left wedged attempts behind.
        pool.shutdown()
    out.update(merged)
    return out


def run_ler_parallel(
    problem: DecodingProblem,
    decoder,
    shots: int,
    seed,
    *,
    n_workers: int = 1,
    batch_size: int = 128,
    shard_shots: int | None = None,
    max_failures: int | None = None,
    target_rse: float | None = None,
    mp_context: str | None = None,
    shard_timeout: float | None = DEFAULT_SHARD_TIMEOUT,
    shard_retries: int = DEFAULT_SHARD_RETRIES,
    max_worker_restarts: int = DEFAULT_MAX_WORKER_RESTARTS,
    on_progress=None,
) -> MonteCarloResult:
    """Estimate a logical error rate with sharded (multi-process) shots.

    Parameters
    ----------
    decoder:
        Registry name, picklable factory, or :class:`Decoder` instance
        (see the module docstring).
    shots:
        Hard cap on the number of sampled shots.
    seed:
        Master seed — ``int``, ``SeedSequence`` or ``Generator``; see
        :func:`repro.sim.seeding.run_root`.
    n_workers:
        Worker processes.  ``1`` runs in-process (no pool, no pickling)
        and returns bit-identical results to any other worker count.
    shard_shots:
        Shots per shard (default ``max(batch_size, 256)``).  Part of
        the reproducibility contract: changing it changes the shard
        decomposition and therefore the sampled streams.
    max_failures:
        Adaptive allocation: stop once the completed shard prefix has
        this many failures (within one shard of the target).
    target_rse:
        Adaptive allocation: stop once the Wilson 95% interval's
        relative half-width ``(hi - lo) / (2 * LER)`` of the completed
        prefix drops to this value.
    shard_timeout:
        Seconds to wait for *any* shard to complete before presuming
        the running attempts hung (``None`` waits forever).  A hung
        shard is retried on another worker up to ``shard_retries``
        times — results stay bit-identical because whichever attempt
        completes first computes the same chunk — and the run raises
        only once a shard's retry budget is exhausted.
    max_worker_restarts:
        How many dead or wedged worker processes the elastic pool may
        respawn over the whole run before giving up (see
        :mod:`repro.sim.pool`).
    on_progress:
        Optional ``f(done, total)`` shard-progress callback (see
        :func:`run_point_tasks`).
    """
    _validate_knobs(shots, n_workers, batch_size, target_rse)
    task = PointTask(
        label=0,
        problem=problem,
        decoder=decoder,
        shots=shots,
        seed=run_root(seed),
        max_failures=max_failures,
        target_rse=target_rse,
    )
    return run_point_tasks(
        [task],
        n_workers=n_workers,
        batch_size=batch_size,
        shard_shots=shard_shots,
        mp_context=mp_context,
        shard_timeout=shard_timeout,
        shard_retries=shard_retries,
        max_worker_restarts=max_worker_restarts,
        on_progress=on_progress,
    )[0]


def run_sweep(
    points,
    shots: int,
    seed,
    *,
    n_workers: int = 1,
    batch_size: int = 128,
    shard_shots: int | None = None,
    max_failures: int | None = None,
    target_rse: float | None = None,
    mp_context: str | None = None,
    shard_timeout: float | None = DEFAULT_SHARD_TIMEOUT,
    shard_retries: int = DEFAULT_SHARD_RETRIES,
    max_worker_restarts: int = DEFAULT_MAX_WORKER_RESTARTS,
    on_progress=None,
) -> dict[str, MonteCarloResult]:
    """Run many LER points through one persistent worker pool.

    ``points`` is ``{label: (problem, decoder_spec)}`` or an iterable
    of ``(label, problem, decoder_spec)`` triples.  Every point gets an
    independent master-seed child (by point order), the same shot
    budget and the same adaptive-stopping knobs; workers cache each
    point's materialised decoder, so an ``n``-point sweep pays decoder
    construction once per point per worker, not once per shard.  All
    points' shards share one interleaved dispatch window, so few-shard
    points do not serialise the sweep.

    Returns ``{label: MonteCarloResult}`` in point order.
    """
    if isinstance(points, dict):
        triples = [(k, p, d) for k, (p, d) in points.items()]
    else:
        triples = [tuple(t) for t in points]
    if not triples:
        raise ValueError("at least one sweep point is required")
    _validate_knobs(shots, n_workers, batch_size, target_rse)
    root = run_root(seed)
    roots = root.spawn(len(triples))
    tasks = [
        PointTask(
            label=label,
            problem=problem,
            decoder=spec,
            shots=shots,
            seed=point_root,
            max_failures=max_failures,
            target_rse=target_rse,
        )
        for (label, problem, spec), point_root in zip(triples, roots)
    ]
    return run_point_tasks(
        tasks,
        n_workers=n_workers,
        batch_size=batch_size,
        shard_shots=shard_shots,
        mp_context=mp_context,
        shard_timeout=shard_timeout,
        shard_retries=shard_retries,
        max_worker_restarts=max_worker_restarts,
        on_progress=on_progress,
    )

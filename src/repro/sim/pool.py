"""Elastic, self-healing worker pool for the sharded engine.

:class:`PoolController` replaces the engine's former fixed
``ProcessPoolExecutor``.  Each worker lives in its own **slot** — a
single-process executor the controller schedules onto directly — which
is what makes three things possible that a shared executor cannot do:

* **Dead-worker detection and respawn.**  A worker process that dies
  mid-task (a segfault, an OOM kill, a fault-injected ``os._exit``)
  surfaces as :class:`WorkerDiedError` on exactly the future it was
  running — never on unrelated queued work, because a slot runs at most
  one task at a time.  The controller respawns a replacement slot on
  the spot, charged against a per-run **restart budget**
  (``max_restarts``); the caller re-submits the lost task to the
  healthy remainder of the pool.
* **Wedge reclamation.**  The engine's hang watchdog names the exact
  future it presumes wedged; :meth:`kill_task` kills that slot's
  process, respawns a replacement (budget permitting), and the retry
  lands on a **fresh** worker instead of queueing behind the wedged
  one.  Combined with deterministic shard streams, recovery is
  bit-identical and bounded by ``shard_timeout``, not by the wedge.
* **Runtime resize.**  :meth:`resize` grows the pool immediately and
  shrinks it gracefully — surplus idle slots retire at once, surplus
  busy slots finish their current task first — so a long sweep can
  give back (or claim) cores between shard dispatches without
  disturbing in-flight work.

Scheduling: :meth:`submit` hands the task to an idle slot or queues it;
completion callbacks drain the queue.  The controller never assigns a
second task to a busy slot, and futures returned by :meth:`submit` are
ordinary :class:`concurrent.futures.Future` objects (``wait()`` works
on them unchanged).

Shutdown discipline: :meth:`shutdown` *kills* slots still running a
task — by then every result of value has been merged (a still-busy slot
is an overshoot or stale retry attempt whose chunk is void by
construction), and joining a possibly-wedged process would block
forever — then joins every worker so ``--leak-check`` sees nothing
left behind.
"""

from __future__ import annotations

import queue
import threading
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

__all__ = [
    "DEFAULT_MAX_WORKER_RESTARTS",
    "PoolController",
    "WorkerDiedError",
]

# Worker respawns allowed per run before the pool stops replacing dead
# or wedged processes and lets the run fail loudly.  Generous enough to
# ride out a flaky host; small enough that a crash-looping workload
# (a shard that segfaults every worker it lands on) terminates.
DEFAULT_MAX_WORKER_RESTARTS = 8


class WorkerDiedError(RuntimeError):
    """The worker process running a task died before completing it.

    Raised on the task's future (never on unrelated work).  The pool
    has already respawned a replacement worker if the restart budget
    allowed; check :attr:`PoolController.n_alive` before re-submitting.
    """


class _Slot:
    """One worker process wrapped in a single-process executor."""

    __slots__ = ("executor", "busy", "retiring", "dead")

    def __init__(self, executor: ProcessPoolExecutor):
        self.executor = executor
        self.busy: Future | None = None  # the proxy future being run
        self.retiring = False
        self.dead = False


class PoolController:
    """Elastic pool of single-task worker slots (see module docstring).

    ``initializer``/``initargs`` run in every worker the controller
    ever spawns — replacements included — so respawned workers carry
    the same per-process state (the engine's point payload) as the
    originals.
    """

    def __init__(
        self,
        n_workers: int,
        *,
        mp_context=None,
        initializer=None,
        initargs=(),
        max_restarts: int = DEFAULT_MAX_WORKER_RESTARTS,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be positive")
        if max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        self._mp_context = mp_context
        self._initializer = initializer
        self._initargs = initargs
        self.max_restarts = max_restarts
        self._lock = threading.Lock()
        self._slots: list[_Slot] = []
        self._pending: deque = deque()  # (proxy, fn, args)
        self._restarts_used = 0
        self._closed = False
        # Completions are processed on a dedicated reaper thread, never
        # on an executor's internal management thread.  A worker death
        # makes the management thread invoke done-callbacks while it
        # holds the executor's shutdown lock; running pool logic there
        # (which takes the pool lock and may touch that same executor)
        # deadlocks against a concurrent submit that holds the pool
        # lock and wants the executor lock.  The inner callbacks only
        # enqueue — lock-free — and the reaper does the real work.
        self._events: queue.SimpleQueue = queue.SimpleQueue()
        self._reaper = threading.Thread(
            target=self._drain_events,
            name="repro-pool-reaper",
            daemon=True,
        )
        self._reaper.start()
        with self._lock:
            for _ in range(n_workers):
                self._slots.append(self._spawn_slot())

    # -- introspection -------------------------------------------------

    @property
    def n_alive(self) -> int:
        """Live (non-retiring) worker slots."""
        with self._lock:
            return sum(
                1 for s in self._slots if not s.dead and not s.retiring
            )

    @property
    def restarts_used(self) -> int:
        """Worker respawns consumed from the restart budget so far."""
        return self._restarts_used

    @property
    def restarts_remaining(self) -> int:
        return max(0, self.max_restarts - self._restarts_used)

    def running_futures(self) -> set:
        """Futures currently executing on a worker (not merely queued)."""
        with self._lock:
            return {
                s.busy for s in self._slots
                if s.busy is not None and not s.dead
            }

    # -- task submission ----------------------------------------------

    def submit(self, fn, /, *args) -> Future:
        """Run ``fn(*args)`` on the next idle worker; returns a future.

        The future resolves with the task's result, with the task's own
        exception, or with :class:`WorkerDiedError` if the worker
        process died underneath it (in which case a replacement worker
        was respawned, budget permitting, and the caller decides
        whether to re-submit).
        """
        proxy: Future = Future()
        with self._lock:
            if self._closed:
                raise RuntimeError("pool is shut down")
            slot = self._idle_slot()
            if slot is None:
                self._pending.append((proxy, fn, args))
                return proxy
            self._dispatch(slot, proxy, fn, args)
        return proxy

    def _idle_slot(self) -> _Slot | None:
        for slot in self._slots:
            if not slot.dead and not slot.retiring and slot.busy is None:
                return slot
        return None

    def _dispatch(self, slot: _Slot, proxy: Future, fn, args) -> None:
        # Caller holds the lock.  One task per slot at a time: the
        # whole failure-isolation story rests on this invariant.
        assert slot.busy is None
        slot.busy = proxy
        proxy.set_running_or_notify_cancel()
        try:
            inner = slot.executor.submit(fn, *args)
        except BrokenProcessPool as exc:
            # The slot died between tasks (rare: a worker crash the
            # previous completion didn't surface).  Treat like a death.
            self._retire_slot_locked(slot, respawn=True)
            proxy.set_exception(WorkerDiedError(str(exc)))
            return
        inner.add_done_callback(
            lambda f, slot=slot, proxy=proxy: self._events.put(
                (slot, proxy, f)
            )
        )

    def _pump_locked(self) -> None:
        """Hand queued tasks to idle slots (caller holds the lock)."""
        while self._pending:
            slot = self._idle_slot()
            if slot is None:
                return
            proxy, fn, args = self._pending.popleft()
            if proxy.cancelled():
                continue
            self._dispatch(slot, proxy, fn, args)

    def _drain_events(self) -> None:
        """Reaper loop: process completions until the shutdown sentinel.

        A crashed handler must not kill the loop — a dead reaper means
        every later future waits forever, which is strictly worse than
        a swallowed bookkeeping error — so failures are contained per
        event.
        """
        while True:
            item = self._events.get()
            if item is None:
                return
            try:
                self._on_done(*item)
            except Exception:  # noqa: BLE001 — keep the reaper alive
                pass

    def _on_done(self, slot: _Slot, proxy: Future, inner: Future) -> None:
        """Completion handler (reaper thread): free slot, resolve proxy."""
        death: Exception | None = None
        exc = None if inner.cancelled() else inner.exception()
        with self._lock:
            if slot.busy is proxy:
                slot.busy = None
            if isinstance(exc, BrokenProcessPool):
                # The worker process died mid-task: this slot's
                # executor is unusable.  Replace it within budget.
                death = exc
                if not slot.dead:
                    self._retire_slot_locked(slot, respawn=True)
            elif slot.retiring and not slot.dead:
                self._retire_slot_locked(slot, respawn=False)
            self._pump_locked()
        # Resolve outside the pool lock: waiters wake immediately and
        # done-callbacks on the proxy may call back into the pool.
        if inner.cancelled():
            # Only possible at shutdown; the proxy is RUNNING (not
            # cancellable), so resolve it with a death marker instead.
            proxy.set_exception(
                WorkerDiedError("worker task cancelled at pool shutdown")
            )
        elif death is not None:
            proxy.set_exception(
                WorkerDiedError(
                    f"worker process died mid-task: {death}"
                )
            )
        elif exc is not None:
            proxy.set_exception(exc)
        else:
            proxy.set_result(inner.result())

    # -- lifecycle -----------------------------------------------------

    def _spawn_slot(self) -> _Slot:
        return _Slot(
            ProcessPoolExecutor(
                max_workers=1,
                mp_context=self._mp_context,
                initializer=self._initializer,
                initargs=self._initargs,
            )
        )

    def _retire_slot_locked(self, slot: _Slot, *, respawn: bool) -> None:
        """Take a slot out of service; optionally respawn (in budget).

        Caller holds the lock.  The executor is shut down without
        waiting (its process is dead or idle); killing a live process
        is :meth:`kill_task`'s job, which runs before this.
        """
        slot.dead = True
        if slot.busy is not None:
            # A task is (presumed) running: kill the process — its
            # result is void and a wedged worker would never join.
            # Idle/dead slots shut down gracefully via the executor.
            for process in list(
                getattr(slot.executor, "_processes", {}).values()
            ):
                process.kill()
        slot.executor.shutdown(wait=False, cancel_futures=True)
        if (
            respawn
            and not self._closed
            and self._restarts_used < self.max_restarts
        ):
            self._restarts_used += 1
            self._slots.append(self._spawn_slot())

    def kill_task(self, future: Future) -> bool:
        """Kill the worker currently running ``future``; respawn it.

        The engine's hang watchdog calls this with a presumed-wedged
        attempt: the slot's process is killed (its result is void — the
        shard is being retried elsewhere), a replacement slot spawns if
        the restart budget allows, and queued work drains onto it.
        Returns ``False`` when ``future`` is not running on any slot
        (already finished, or still queued).
        """
        with self._lock:
            for slot in self._slots:
                if slot.busy is future and not slot.dead:
                    self._retire_slot_locked(slot, respawn=True)
                    self._pump_locked()
                    return True
        return False

    def resize(self, n_workers: int) -> None:
        """Grow or shrink the pool between dispatches.

        Growth is immediate (queued work drains onto the new slots).
        Shrinking retires surplus idle slots now and marks surplus busy
        slots *retiring*: they finish their current task, then retire —
        in-flight work is never abandoned by a resize.
        """
        if n_workers < 1:
            raise ValueError("n_workers must be positive")
        with self._lock:
            if self._closed:
                raise RuntimeError("pool is shut down")
            live = [
                s for s in self._slots if not s.dead and not s.retiring
            ]
            if n_workers > len(live):
                for _ in range(n_workers - len(live)):
                    self._slots.append(self._spawn_slot())
                self._pump_locked()
                return
            surplus = len(live) - n_workers
            # Retire idle slots first — immediate and free; only then
            # mark busy ones, which retire on completion.
            for slot in sorted(live, key=lambda s: s.busy is not None):
                if surplus == 0:
                    break
                if slot.busy is None:
                    self._retire_slot_locked(slot, respawn=False)
                else:
                    slot.retiring = True
                surplus -= 1

    def shutdown(self) -> None:
        """Kill busy workers, join everything, reject further submits.

        Safe to call twice.  Any task still running holds no value by
        the time the engine shuts the pool down (its shard was either
        merged from another attempt or the run failed), so busy workers
        are killed rather than joined — a wedged process would block a
        graceful join forever.  Every process is then joined via its
        executor, so no worker outlives this call.
        """
        with self._lock:
            self._closed = True
            slots = list(self._slots)
            self._slots.clear()
            for proxy, _fn, _args in self._pending:
                proxy.cancel()
            self._pending.clear()
        for slot in slots:
            if slot.dead:
                continue
            for process in list(
                getattr(slot.executor, "_processes", {}).values()
            ):
                if slot.busy is not None:
                    process.kill()
        for slot in slots:
            slot.executor.shutdown(wait=True, cancel_futures=True)
        # Joining the executors flushed their completion callbacks, so
        # every event is already queued; the sentinel lands behind them
        # and the reaper drains the lot before exiting.
        self._events.put(None)
        self._reaper.join()

    def __enter__(self) -> "PoolController":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

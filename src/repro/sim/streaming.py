"""Streaming-decode queue simulation (the data-backlog argument).

The paper's introduction motivates low-latency decoding with the
classic backlog argument [25]: syndromes are produced at a fixed rate
by the quantum device, and a decoder that cannot keep pace accumulates
an ever-growing queue, eventually stalling fault-tolerant execution.
Sec. VI reiterates the setting: "syndrome extraction is performed
sequentially and syndromes arrive in a streaming fashion".

This module simulates exactly that pipeline as a deterministic-arrival
FIFO queue (D/G/1): decoding task ``i`` arrives at ``i x period``; a
single decoder serves tasks in order.  It reports the waiting-time and
backlog trajectories, and — when the decoder is too slow on average —
the linear backlog growth rate.

Latencies can come from three sources, matching the repository's other
latency tooling:

* measured wall-clock seconds (CPU experiments, Figs. 14-15),
* a modelled :class:`~repro.analysis.hardware.HardwareLatencyModel`
  (the FPGA/ASIC discussion), via :func:`run_streaming`,
* any user-supplied latency array, via :func:`simulate_stream`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.hardware import HardwareLatencyModel
from repro.decoders.base import Decoder
from repro.problem import DecodingProblem

__all__ = ["StreamingReport", "simulate_stream", "run_streaming"]


@dataclass
class StreamingReport:
    """Queueing outcome of one streaming-decode simulation.

    All times share the unit of the supplied latencies (``us`` when
    driven by :class:`HardwareLatencyModel`, seconds for wall clock).
    """

    period: float
    service: np.ndarray = field(repr=False)
    waits: np.ndarray = field(repr=False)
    backlog: np.ndarray = field(repr=False)

    @property
    def n_tasks(self) -> int:
        """Number of decoding tasks pushed through the queue."""
        return self.service.shape[0]

    @property
    def utilisation(self) -> float:
        """Mean service time over arrival period (rho; < 1 is stable)."""
        return float(self.service.mean() / self.period)

    @property
    def stable(self) -> bool:
        """Whether the queue drains (Terhal's backlog criterion)."""
        return self.utilisation < 1.0

    @property
    def drift_per_task(self) -> float:
        """Mean queue-time growth per task; positive means divergence."""
        return float(self.service.mean() - self.period)

    @property
    def max_backlog(self) -> int:
        """Largest number of undecoded syndromes ever queued."""
        return int(self.backlog.max())

    @property
    def mean_wait(self) -> float:
        """Average time a task spends queued before decoding starts."""
        return float(self.waits.mean())

    @property
    def worst_response(self) -> float:
        """Largest arrival-to-completion time over all tasks."""
        return float((self.waits + self.service).max())

    def __str__(self) -> str:
        state = "stable" if self.stable else "diverging"
        return (
            f"streaming queue: rho={self.utilisation:.2f} ({state}), "
            f"max backlog {self.max_backlog}, "
            f"mean wait {self.mean_wait:.3g}"
        )


def simulate_stream(service_times, period: float) -> StreamingReport:
    """Push ``service_times`` through a deterministic-arrival queue.

    Task ``i`` arrives at ``i * period``; a single FIFO server decodes.
    Returns per-task waiting times and the backlog (number of arrived
    but unfinished tasks) sampled at each arrival instant.
    """
    service = np.asarray(service_times, dtype=np.float64).reshape(-1)
    if service.size == 0:
        raise ValueError("at least one service time is required")
    if np.any(service < 0):
        raise ValueError("service times must be non-negative")
    if period <= 0:
        raise ValueError("period must be positive")

    n = service.size
    arrivals = np.arange(n) * period

    # Lindley recursion, vectorised.  With ``C_i = cumsum(service)``
    # (so ``C_{i-1}`` is the shifted cumulative sum ``offset``),
    #
    #   start_i = max(arrival_i, finish_{i-1})
    #           = max_{j <= i}(arrival_j + C_{i-1} - C_{j-1})
    #           = max.accumulate(arrivals - offset)_i + offset_i,
    #
    # which replaces the per-task Python loop with three array passes.
    csum = np.cumsum(service)
    offset = np.concatenate(([0.0], csum[:-1]))
    starts = np.maximum.accumulate(arrivals - offset) + offset
    # Clamp: reassociating the cumulative sums can leave an idle-server
    # wait a few ulp below the loop's exact 0.0 (never above — the
    # prefix max includes j = i).  Exact-arithmetic inputs are
    # unaffected, preserving bit-equality with the sequential loop.
    waits = np.maximum(starts - arrivals, 0.0)
    finish = arrivals + waits + service

    # Backlog at arrival i: tasks arrived up to and including i whose
    # decode has not finished by that instant.  ``finish`` is
    # non-decreasing (single FIFO server), so counting ``finish_j >
    # arrival_i`` over ``j <= i`` is a binary search: of the ``i + 1``
    # arrived tasks, ``searchsorted(finish, arrival_i, "right")`` have
    # finished (tasks after ``i`` cannot — they arrive strictly later
    # than ``arrival_i`` and finish no earlier than they arrive).  The
    # old per-arrival scan was O(n^2) and dominated long streaming
    # runs.
    backlog = (
        np.arange(1, n + 1)
        - np.searchsorted(finish, arrivals, side="right")
    ).astype(np.int64)
    return StreamingReport(
        period=float(period), service=service, waits=waits, backlog=backlog
    )


def run_streaming(
    problem: DecodingProblem,
    decoder: Decoder,
    shots: int,
    rng: np.random.Generator,
    *,
    hardware: HardwareLatencyModel | None = None,
    parallel: bool = True,
    time_source: str = "decoder",
) -> StreamingReport:
    """Simulate a decoder consuming a live syndrome stream.

    Shots are sampled from ``problem`` and decoded; each decode's
    modelled hardware latency (or measured ``time_seconds`` when no
    ``hardware`` model is given) becomes a service time.  The arrival
    period is the problem's syndrome-extraction budget:
    ``rounds x round_time`` under the hardware model, or the mean
    service time at utilisation 0.9 as a neutral default for wall
    clock.

    ``time_source`` selects the wall-clock path's timing source
    explicitly (ignored under a ``hardware`` model):

    * ``"decoder"`` (default) — each decode's self-reported
      ``time_seconds``.  Raises :class:`ValueError` if any shot reports
      a non-positive time: a decoder that does not measure itself must
      not be silently backfilled from a different clock, because mixing
      the two timing sources inside one service array skews every
      queueing statistic derived from it.
    * ``"wall"`` — this function's own ``perf_counter`` wall time
      around every ``decode`` call, for decoders that do not report
      timings.
    """
    if shots < 1:
        raise ValueError("shots must be positive")
    if time_source not in ("decoder", "wall"):
        raise ValueError(
            f"time_source must be 'decoder' or 'wall', got {time_source!r}"
        )
    errors = problem.sample_errors(shots, rng)
    syndromes = problem.syndromes(errors)

    if hardware is not None:
        # Array-first: the latency model maps the batch's iteration
        # columns straight to modelled service times.
        results = decoder.decode_many(syndromes)
        service = hardware.latencies_us(results, parallel=parallel)
        period = hardware.syndrome_budget_us(problem.rounds)
    else:
        # No hardware model: time each decode on the wall clock, one
        # shot at a time (the streaming arrival order of Sec. VI).
        # The service array is fed by exactly ONE clock — either the
        # decoder's own measurements or ours, never a mix.
        service = np.empty(shots)
        for i in range(shots):
            start = time.perf_counter()
            result = decoder.decode(syndromes[i])
            wall = time.perf_counter() - start
            service[i] = (
                result.time_seconds if time_source == "decoder" else wall
            )
        if time_source == "decoder" and np.any(service <= 0):
            bad = int((service <= 0).sum())
            raise ValueError(
                f"decoder reported non-positive time_seconds for {bad} of "
                f"{shots} shots; it does not measure itself — pass "
                "time_source='wall' to time decodes externally instead "
                "of mixing clocks"
            )
        period = float(service.mean()) / 0.9
    return simulate_stream(service, period)

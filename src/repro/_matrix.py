"""Shared sparse-matrix helpers for GF(2) syndrome arithmetic."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = ["to_csr", "mod2_right_mul"]


def to_csr(mat) -> sp.csr_matrix:
    """Coerce a dense or sparse binary matrix to int32 CSR.

    int32 storage makes products accumulate without overflow before the
    mod-2 reduction.
    """
    if sp.issparse(mat):
        out = mat.tocsr().astype(np.int32)
    else:
        out = sp.csr_matrix(np.asarray(mat, dtype=np.int32))
    out.data %= 2
    out.eliminate_zeros()
    return out


def mod2_right_mul(vectors, mat: sp.csr_matrix) -> np.ndarray:
    """Compute ``vectors @ mat.T (mod 2)`` for batched row vectors.

    ``vectors`` has shape ``(batch, n)`` (or ``(n,)``); ``mat`` is
    ``(m, n)``.  Returns uint8 of shape ``(batch, m)`` (or ``(m,)``).
    """
    arr = np.asarray(vectors)
    squeeze = arr.ndim == 1
    if squeeze:
        arr = arr[None, :]
    product = mat.dot(arr.T.astype(np.int32))
    result = (np.asarray(product.T) % 2).astype(np.uint8)
    return result[0] if squeeze else result

"""Normalised min-sum belief propagation (paper Sec. II-B, Eqs. 4-8).

The decoder is fully vectorised over a *batch* of syndromes: messages
live in ``(batch, n_edges)`` arrays and every update is a segment
reduction.  Batching is what makes the speculative BP-SF trials cheap —
decoding 100 trial syndromes costs one batched run, mirroring the
paper's "fully parallelizable" claim on SIMD hardware.

Features reproduced from the paper:

* normalised min-sum check update with damping factor ``α``,
* the adaptive schedule ``α_i = 1 - 2^{-i}``,
* bit-level oscillation tracking (``flip_count``) used by BP-SF to
  choose candidate bits,
* per-shot iteration counts for the convergence/latency studies
  (Figs. 2, 12, 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._matrix import mod2_right_mul
from repro.decoders.base import DecodeResult, Decoder
from repro.decoders.tanner import TannerEdges
from repro.problem import DecodingProblem

__all__ = ["BPBatchResult", "DampingSchedule", "MinSumBP"]


class DampingSchedule:
    """Damping factor per iteration.

    ``DampingSchedule.adaptive()`` follows the paper:
    ``α_i = 1 - 2^{-i}`` (0.5, 0.75, 0.875, ... -> 1).  A float gives a
    constant factor.
    """

    def __init__(self, kind: str | float = "adaptive"):
        if isinstance(kind, str):
            if kind != "adaptive":
                raise ValueError(f"unknown damping schedule {kind!r}")
            self._constant = None
        else:
            if not 0.0 < float(kind) <= 1.0:
                raise ValueError("constant damping must lie in (0, 1]")
            self._constant = float(kind)
        self.kind = kind

    @classmethod
    def adaptive(cls) -> "DampingSchedule":
        """The paper's schedule ``α_i = 1 - 2^{-i}``."""
        return cls("adaptive")

    def alpha(self, iteration: int) -> float:
        """Damping factor for a 1-based iteration index."""
        if self._constant is not None:
            return self._constant
        return 1.0 - 2.0 ** (-iteration)


@dataclass
class BPBatchResult:
    """Vectorised result of decoding a batch of syndromes."""

    errors: np.ndarray                    # (batch, n) uint8
    converged: np.ndarray                 # (batch,) bool
    iterations: np.ndarray                # (batch,) int
    marginals: np.ndarray                 # (batch, n) float
    flip_counts: np.ndarray | None = field(default=None)

    def __len__(self) -> int:
        return self.errors.shape[0]

    def to_results(self) -> list[DecodeResult]:
        """Convert to per-shot :class:`DecodeResult` records."""
        out = []
        for i in range(len(self)):
            out.append(
                DecodeResult(
                    error=self.errors[i],
                    converged=bool(self.converged[i]),
                    iterations=int(self.iterations[i]),
                    stage="initial" if self.converged[i] else "failed",
                    marginals=self.marginals[i],
                    flip_counts=(
                        None if self.flip_counts is None else self.flip_counts[i]
                    ),
                )
            )
        return out


class MinSumBP(Decoder):
    """Flooding-schedule normalised min-sum decoder.

    Parameters
    ----------
    problem:
        The decoding problem (check matrix + priors).
    max_iter:
        Iteration budget per syndrome.
    damping:
        ``"adaptive"`` (paper default) or a constant in (0, 1].
    clamp:
        Message magnitude clip, guards degree-1 checks and saturation.
    track_oscillations:
        Accumulate per-bit flip counters (needed by BP-SF).
    batch_size:
        Internal chunk size for batched decoding (memory knob).
    """

    def __init__(
        self,
        problem: DecodingProblem,
        *,
        max_iter: int = 100,
        damping: str | float = "adaptive",
        clamp: float = 50.0,
        track_oscillations: bool = False,
        dtype=np.float32,
        batch_size: int = 32,
    ):
        if max_iter < 1:
            raise ValueError("max_iter must be at least 1")
        self.problem = problem
        self.max_iter = int(max_iter)
        self.damping = (
            damping if isinstance(damping, DampingSchedule)
            else DampingSchedule(damping)
        )
        self.clamp = float(clamp)
        self.track_oscillations = bool(track_oscillations)
        self.dtype = dtype
        self.batch_size = int(batch_size)
        self.edges = TannerEdges(problem.check_matrix)
        self._prior_llr = problem.llr_priors().astype(dtype)

    # -- public API -----------------------------------------------------

    def decode(self, syndrome, *, prior_llr=None) -> DecodeResult:
        return self.decode_many(
            np.atleast_2d(syndrome), prior_llr=prior_llr
        ).to_results()[0]

    def decode_batch(self, syndromes) -> list[DecodeResult]:
        return self.decode_many(syndromes).to_results()

    def decode_many(self, syndromes, *, prior_llr=None) -> BPBatchResult:
        """Decode a ``(batch, n_checks)`` array of syndromes.

        ``prior_llr`` optionally overrides the channel LLRs: a ``(n,)``
        vector applies to every shot, a ``(batch, n)`` matrix gives each
        shot its own priors.  Per-shot priors are what decimation-style
        post-processors (GDG, posterior modification, perturbed-prior
        ensembles) build on.
        """
        syndromes = np.atleast_2d(np.asarray(syndromes, dtype=np.uint8))
        if syndromes.shape[1] != self.edges.n_checks:
            raise ValueError(
                f"syndrome width {syndromes.shape[1]} does not match "
                f"{self.edges.n_checks} checks"
            )
        prior = self._normalise_prior(prior_llr, syndromes.shape[0])
        chunks = [
            self._decode_chunk(
                syndromes[i: i + self.batch_size],
                prior if prior.shape[0] == 1
                else prior[i: i + self.batch_size],
            )
            for i in range(0, syndromes.shape[0], self.batch_size)
        ]
        return _concat_results(chunks)

    def _normalise_prior(self, prior_llr, batch: int) -> np.ndarray:
        """Coerce a prior override to a ``(1, n)`` or ``(batch, n)`` array."""
        if prior_llr is None:
            return self._prior_llr[None, :]
        prior = np.atleast_2d(np.asarray(prior_llr, dtype=self.dtype))
        if prior.shape[1] != self.edges.n_vars:
            raise ValueError(
                f"prior width {prior.shape[1]} does not match "
                f"{self.edges.n_vars} variables"
            )
        if prior.shape[0] not in (1, batch):
            raise ValueError(
                f"prior batch {prior.shape[0]} does not match {batch} shots"
            )
        return prior

    # -- core -----------------------------------------------------------

    def _decode_chunk(
        self, syndromes: np.ndarray, prior: np.ndarray | None = None
    ) -> BPBatchResult:
        edges = self.edges
        batch = syndromes.shape[0]
        n = edges.n_vars
        if prior is None:
            prior = self._prior_llr[None, :]
        prior = prior.astype(self.dtype, copy=False)

        errors = np.zeros((batch, n), dtype=np.uint8)
        marginals = np.broadcast_to(prior, (batch, n)).copy()
        iterations = np.full(batch, self.max_iter, dtype=np.int64)
        converged = np.zeros(batch, dtype=bool)
        flips_out = (
            np.zeros((batch, n), dtype=np.int32)
            if self.track_oscillations else None
        )

        # Active-state arrays (compacted as shots converge).
        index = np.arange(batch)
        synd = syndromes
        sign_syn = (1.0 - 2.0 * synd[:, edges.edge_check]).astype(self.dtype)
        v2c = np.broadcast_to(
            prior[:, edges.edge_var], (batch, edges.n_edges)
        ).copy()
        prev_hard = np.zeros((batch, n), dtype=np.uint8)
        flips = (
            np.zeros((batch, n), dtype=np.int32)
            if self.track_oscillations else None
        )

        marg = np.broadcast_to(prior, (batch, n))
        for it in range(1, self.max_iter + 1):
            alpha = self.damping.alpha(it)
            prior_it = self._iteration_prior(prior, marg, it)
            c2v = self._check_update(v2c, sign_syn, alpha)
            marg, v2c = self._variable_update(c2v, prior_it)
            hard = (marg <= 0).astype(np.uint8)

            if flips is not None and it > 1:
                flips += hard ^ prev_hard
            prev_hard = hard

            syn_hat = mod2_right_mul(hard, self.problem.check_matrix)
            done = ~np.any(syn_hat ^ synd, axis=1)
            if done.any():
                done_idx = index[done]
                errors[done_idx] = hard[done]
                marginals[done_idx] = marg[done]
                iterations[done_idx] = it
                converged[done_idx] = True
                if flips is not None:
                    flips_out[done_idx] = flips[done]
                keep = ~done
                if not keep.any():
                    return BPBatchResult(
                        errors, converged, iterations, marginals, flips_out
                    )
                index = index[keep]
                synd = synd[keep]
                sign_syn = sign_syn[keep]
                v2c = v2c[keep]
                prev_hard = prev_hard[keep]
                if flips is not None:
                    flips = flips[keep]
                if prior.shape[0] != 1:
                    prior = prior[keep]
                marg = marg[keep]
                hard = hard[keep]

        # Leftovers did not converge within the budget.
        errors[index] = hard
        marginals[index] = marg
        if flips is not None:
            flips_out[index] = flips
        return BPBatchResult(errors, converged, iterations, marginals, flips_out)

    def _iteration_prior(self, prior, marg_prev, iteration: int) -> np.ndarray:
        """Prior used at ``iteration`` (hook for memory-augmented BP).

        Plain BP uses the channel prior every iteration; Mem-BP blends
        it with the previous marginals (:mod:`repro.decoders.membp`).
        """
        return prior

    def _check_update(self, v2c, sign_syn, alpha) -> np.ndarray:
        """Normalised min-sum check-node update (Eq. 6)."""
        edges = self.edges
        starts = edges.check_starts
        seg = edges.edge_segment

        neg = v2c < 0
        magnitude = np.abs(v2c)
        parity = np.bitwise_xor.reduceat(neg, starts, axis=1)
        min1 = np.minimum.reduceat(magnitude, starts, axis=1)
        min1_e = min1[:, seg]
        is_min = magnitude == min1_e
        masked = np.where(is_min, np.inf, magnitude)
        min2 = np.minimum.reduceat(masked, starts, axis=1)
        n_min = np.add.reduceat(is_min, starts, axis=1)
        use_second = is_min & (n_min[:, seg] == 1)
        others_min = np.where(use_second, min2[:, seg], min1_e)
        others_min = np.minimum(others_min, self.clamp)
        sign = 1.0 - 2.0 * (parity[:, seg] ^ neg)
        return (alpha * others_min * sign * sign_syn).astype(self.dtype)

    def _variable_update(self, c2v, prior) -> tuple[np.ndarray, np.ndarray]:
        """Marginals (Eq. 7) and next variable-to-check messages (Eq. 5)."""
        edges = self.edges
        c2v_v = c2v[:, edges.to_var_order]
        sums = np.add.reduceat(c2v_v, edges.var_starts, axis=1)
        marg = prior + edges.scatter_var_sums(sums)
        v2c_v = marg[:, edges.edge_var_sorted] - c2v_v
        v2c = np.empty_like(c2v)
        v2c[:, edges.to_var_order] = v2c_v
        np.clip(v2c, -self.clamp, self.clamp, out=v2c)
        return marg, v2c


def _concat_results(chunks: list[BPBatchResult]) -> BPBatchResult:
    if len(chunks) == 1:
        return chunks[0]
    flip = None
    if chunks[0].flip_counts is not None:
        flip = np.concatenate([c.flip_counts for c in chunks])
    return BPBatchResult(
        errors=np.concatenate([c.errors for c in chunks]),
        converged=np.concatenate([c.converged for c in chunks]),
        iterations=np.concatenate([c.iterations for c in chunks]),
        marginals=np.concatenate([c.marginals for c in chunks]),
        flip_counts=flip,
    )

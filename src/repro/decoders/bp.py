"""Normalised min-sum belief propagation (paper Sec. II-B, Eqs. 4-8).

The decoder is fully vectorised over a *batch* of syndromes: messages
live in ``(batch, n_edges)`` arrays and every update is a segment
reduction.  Batching is what makes the speculative BP-SF trials cheap —
decoding 100 trial syndromes costs one batched run, mirroring the
paper's "fully parallelizable" claim on SIMD hardware.

Features reproduced from the paper:

* normalised min-sum check update with damping factor ``α``,
* the adaptive schedule ``α_i = 1 - 2^{-i}``,
* bit-level oscillation tracking (``flip_count``) used by BP-SF to
  choose candidate bits,
* per-shot iteration counts for the convergence/latency studies
  (Figs. 2, 12, 13).
"""

from __future__ import annotations

import numpy as np

from repro.decoders.base import BatchDecodeResult, DecodeResult, Decoder
from repro.decoders.kernels import make_kernel, resolve_backend
from repro.decoders.tanner import shared_tanner_edges
from repro.problem import DecodingProblem

__all__ = ["BPBatchResult", "DampingSchedule", "MinSumBP"]

# Historical name for the vectorised result record; the generalised
# array-first class now lives in :mod:`repro.decoders.base`.
BPBatchResult = BatchDecodeResult

# Iteration cap of the first decoding pass on large batches.  Most
# shots converge within a few iterations; capping the first pass and
# re-batching every straggler into one dense second pass stops each
# chunk from paying full per-iteration dispatch overhead for its last
# one or two unconverged rows.  BP is deterministic, so re-running a
# straggler from scratch reproduces the exact trajectory (and
# iteration count) of an uncapped run — results are bit-identical.
_STRAGGLER_CAP = 16

# Cap on the multi-iteration fusion depth: how many BP iterations an
# iteration-fusing kernel may run inside one backend call.  Purely a
# latency/throughput trade (convergence is still checked in-kernel every
# iteration, so results never depend on the depth): a huge span would
# only delay Python-side retirement bookkeeping, never change it.
_FUSION_MAX_SPAN = 32


class DampingSchedule:
    """Damping factor per iteration.

    ``DampingSchedule.adaptive()`` follows the paper:
    ``α_i = 1 - 2^{-i}`` (0.5, 0.75, 0.875, ... -> 1).  A float gives a
    constant factor.
    """

    def __init__(self, kind: str | float = "adaptive"):
        if isinstance(kind, str):
            if kind != "adaptive":
                raise ValueError(f"unknown damping schedule {kind!r}")
            self._constant = None
        else:
            if not 0.0 < float(kind) <= 1.0:
                raise ValueError("constant damping must lie in (0, 1]")
            self._constant = float(kind)
        self.kind = kind

    @classmethod
    def adaptive(cls) -> "DampingSchedule":
        """The paper's schedule ``α_i = 1 - 2^{-i}``."""
        return cls("adaptive")

    def alpha(self, iteration: int) -> float:
        """Damping factor for a 1-based iteration index."""
        if self._constant is not None:
            return self._constant
        return 1.0 - 2.0 ** (-iteration)


class MinSumBP(Decoder):
    """Flooding-schedule normalised min-sum decoder.

    Parameters
    ----------
    problem:
        The decoding problem (check matrix + priors).
    max_iter:
        Iteration budget per syndrome.
    damping:
        ``"adaptive"`` (paper default) or a constant in (0, 1].
    clamp:
        Message magnitude clip, guards degree-1 checks and saturation.
    track_oscillations:
        Accumulate per-bit flip counters (needed by BP-SF).
    batch_size:
        Internal chunk size for batched decoding (memory knob).
    backend:
        Inner-loop kernel backend: ``"reference"``, ``"fused"`` or
        ``"auto"``/``None`` (defer to an active
        :func:`repro.decoders.kernels.use_backend` scope, then the
        ``REPRO_BP_BACKEND`` environment variable, then the default).
        All backends are bit-identical; see
        :mod:`repro.decoders.kernels`.
    """

    def __init__(
        self,
        problem: DecodingProblem,
        *,
        max_iter: int = 100,
        damping: str | float = "adaptive",
        clamp: float = 50.0,
        track_oscillations: bool = False,
        dtype=np.float32,
        batch_size: int = 32,
        backend: str | None = None,
    ):
        if max_iter < 1:
            raise ValueError("max_iter must be at least 1")
        self.problem = problem
        self.max_iter = int(max_iter)
        self.damping = (
            damping if isinstance(damping, DampingSchedule)
            else DampingSchedule(damping)
        )
        self.clamp = float(clamp)
        self.track_oscillations = bool(track_oscillations)
        self.dtype = dtype
        self.batch_size = int(batch_size)
        self.edges = shared_tanner_edges(problem.check_matrix)
        self.backend = resolve_backend(backend)
        self._kernel = make_kernel(
            self.backend, self.edges, problem.check_matrix,
            clamp=self.clamp, dtype=dtype,
        )
        self._prior_llr = problem.llr_priors().astype(dtype)
        # Multi-iteration fusion runs K iterations per kernel call, so
        # it is only sound when no subclass hook intercepts the
        # per-iteration protocol (Mem-BP's prior blend, sum-product's
        # check rule).  Such subclasses fall back to the generic loop,
        # which every backend — fusing or not — implements.
        cls = type(self)
        self._uses_fusion = (
            self._kernel.supports_iteration_fusion
            and cls._iteration_prior is MinSumBP._iteration_prior
            and cls._check_update is MinSumBP._check_update
            and cls._variable_update is MinSumBP._variable_update
        )

    # -- public API -----------------------------------------------------

    def decode(self, syndrome, *, prior_llr=None) -> DecodeResult:
        return self.decode_many(
            np.atleast_2d(syndrome), prior_llr=prior_llr
        ).to_results()[0]

    def decode_many(
        self, syndromes, *, prior_llr=None, stop_groups=None
    ) -> BatchDecodeResult:
        """Decode a ``(batch, n_checks)`` array of syndromes.

        ``prior_llr`` optionally overrides the channel LLRs: a ``(n,)``
        vector applies to every shot, a ``(batch, n)`` matrix gives each
        shot its own priors.  Per-shot priors are what decimation-style
        post-processors (GDG, posterior modification, perturbed-prior
        ensembles) build on.

        ``stop_groups`` optionally assigns each row a group id (an
        integer array of length ``batch``; rows of one group must be
        contiguous): the moment one row of a group converges, the
        group's other rows stop decoding (reported unconverged, with
        ``iterations`` frozen at the stop point).  This is the
        first-success-wins semantics of the paper's fully parallel
        trial execution — speculative trials of one shot form a group,
        and the first convergence retires the rest of the group's work.
        Groups are never split across internal chunks, so every group
        runs in lockstep and its outcome is independent of what else
        shares the batch.
        """
        syndromes = np.atleast_2d(np.asarray(syndromes, dtype=np.uint8))
        if syndromes.shape[1] != self.edges.n_checks:
            raise ValueError(
                f"syndrome width {syndromes.shape[1]} does not match "
                f"{self.edges.n_checks} checks"
            )
        batch = syndromes.shape[0]
        prior = self._normalise_prior(prior_llr, batch)
        if stop_groups is None:
            return self._decode_phased(syndromes, prior)

        stop_groups = np.asarray(stop_groups).reshape(-1)
        if stop_groups.shape[0] != batch:
            raise ValueError(
                f"stop_groups length {stop_groups.shape[0]} does not "
                f"match {batch} shots"
            )
        starts = np.concatenate(
            ([0], np.nonzero(np.diff(stop_groups) != 0)[0] + 1)
        )
        if np.unique(stop_groups[starts]).size != starts.size:
            raise ValueError("rows of one stop_group must be contiguous")
        return self._decode_grouped(syndromes, prior, stop_groups)

    def _decode_phased(self, syndromes, prior) -> BatchDecodeResult:
        """Two-pass chunked decoding with straggler re-batching.

        Pass 1 decodes every chunk under a small iteration cap; the few
        shots still unconverged are then pooled and decoded once more
        from scratch with the full budget.  Deterministic BP makes the
        re-run reproduce the uncapped trajectory exactly, so results
        (including iteration counts) are identical to a single pass —
        only the straggler-tail dispatch overhead disappears.
        """
        batch = syndromes.shape[0]
        if batch <= self.batch_size or self.max_iter <= _STRAGGLER_CAP:
            return self._run_chunks(syndromes, prior, self.max_iter)
        first = self._run_chunks(syndromes, prior, _STRAGGLER_CAP)
        if first.converged.all():
            return first
        idx = np.nonzero(~first.converged)[0]
        second = self._run_chunks(
            syndromes[idx],
            prior if prior.shape[0] == 1 else prior[idx],
            self.max_iter,
        )
        return _merge_rows(first, idx, second)

    def _run_chunks(self, syndromes, prior, max_iter) -> BatchDecodeResult:
        chunks = [
            self._decode_chunk(
                syndromes[i: i + self.batch_size],
                prior if prior.shape[0] == 1
                else prior[i: i + self.batch_size],
                max_iter=max_iter,
            )
            for i in range(0, syndromes.shape[0], self.batch_size)
        ]
        return _concat_results(chunks)

    def _decode_grouped(
        self, syndromes, prior, stop_groups
    ) -> BatchDecodeResult:
        """Grouped decoding with straggler re-batching per group.

        Pass 1 runs under the straggler cap; every group that saw a
        convergence is settled (its rows were retired at that very
        iteration), and the remaining groups — all rows still live —
        re-decode once from scratch with the full budget.
        """
        batch = syndromes.shape[0]
        if batch <= self.batch_size or self.max_iter <= _STRAGGLER_CAP:
            return self._run_grouped(syndromes, prior, stop_groups,
                                     self.max_iter)
        first = self._run_grouped(syndromes, prior, stop_groups,
                                  _STRAGGLER_CAP)
        settled = np.unique(stop_groups[first.converged])
        redo = ~np.isin(stop_groups, settled)
        if not redo.any():
            return first
        idx = np.nonzero(redo)[0]
        second = self._run_grouped(
            syndromes[idx],
            prior if prior.shape[0] == 1 else prior[idx],
            stop_groups[idx],
            self.max_iter,
        )
        return _merge_rows(first, idx, second)

    def _run_grouped(
        self, syndromes, prior, stop_groups, max_iter
    ) -> BatchDecodeResult:
        """Chunked grouped decoding that never splits a group.

        Whole groups pack into chunks of roughly ``batch_size`` rows (a
        group larger than ``batch_size`` gets an oversized chunk), so
        every group runs in lockstep from iteration 1 and its outcome —
        which row converges first, where the rest stop — cannot depend
        on how the surrounding batch was chunked.
        """
        batch = syndromes.shape[0]
        bounds = np.nonzero(np.diff(stop_groups) != 0)[0] + 1
        segment_ends = np.concatenate([bounds, [batch]])
        chunks = []
        lo = 0
        for hi in segment_ends:
            if hi - lo >= self.batch_size:
                chunks.append((lo, int(hi)))
                lo = int(hi)
        if lo < batch:
            chunks.append((lo, batch))
        parts = [
            self._decode_chunk(
                syndromes[lo:hi],
                prior if prior.shape[0] == 1 else prior[lo:hi],
                groups=stop_groups[lo:hi],
                max_iter=max_iter,
            )
            for lo, hi in chunks
        ]
        return _concat_results(parts)

    def _normalise_prior(self, prior_llr, batch: int) -> np.ndarray:
        """Coerce a prior override to a ``(1, n)`` or ``(batch, n)`` array."""
        if prior_llr is None:
            return self._prior_llr[None, :]
        prior = np.atleast_2d(np.asarray(prior_llr, dtype=self.dtype))
        if prior.shape[1] != self.edges.n_vars:
            raise ValueError(
                f"prior width {prior.shape[1]} does not match "
                f"{self.edges.n_vars} variables"
            )
        if prior.shape[0] not in (1, batch):
            raise ValueError(
                f"prior batch {prior.shape[0]} does not match {batch} shots"
            )
        return prior

    # -- core -----------------------------------------------------------

    def _decode_chunk(
        self,
        syndromes: np.ndarray,
        prior: np.ndarray | None = None,
        groups: np.ndarray | None = None,
        max_iter: int | None = None,
    ) -> BPBatchResult:
        """Decode one chunk through the kernel backend.

        The loop owns scheduling, damping, convergence retirement and
        the ``stop_groups`` semantics; every array-heavy step (message
        updates, hard decision, parity check, active-state compaction)
        is delegated to ``self._kernel`` so backends can trade
        allocation strategy without touching decode semantics.  The
        ``_iteration_prior`` / ``_check_update`` / ``_variable_update``
        hooks stay on the decoder, so Mem-BP and sum-product subclasses
        work identically on every backend.
        """
        kernel = self._kernel
        batch = syndromes.shape[0]
        n = self.edges.n_vars
        if max_iter is None:
            max_iter = self.max_iter
        if prior is None:
            prior = self._prior_llr[None, :]
        prior = prior.astype(self.dtype, copy=False)
        if self._uses_fusion:
            return self._decode_chunk_fused(syndromes, prior, groups, max_iter)

        errors = np.zeros((batch, n), dtype=np.uint8)
        marginals = np.broadcast_to(prior, (batch, n)).copy()
        iterations = np.full(batch, max_iter, dtype=np.int64)
        converged = np.zeros(batch, dtype=bool)
        flips_out = (
            np.zeros((batch, n), dtype=np.int32)
            if self.track_oscillations else None
        )

        # Active-state arrays (compacted as shots converge).  The
        # kernel owns the syndrome context and message buffers; the
        # loop keeps the row-index map and the oscillation counters.
        index = np.arange(batch)
        v2c = kernel.start(syndromes, prior)
        prev_hard = np.zeros((batch, n), dtype=np.uint8)
        flips = (
            np.zeros((batch, n), dtype=np.int32)
            if self.track_oscillations else None
        )

        marg = np.broadcast_to(prior, (batch, n))
        for it in range(1, max_iter + 1):
            alpha = self.damping.alpha(it)
            prior_it = self._iteration_prior(prior, marg, it)
            c2v = self._check_update(v2c, kernel.sign_syn, alpha)
            marg, v2c = self._variable_update(c2v, prior_it)
            hard = kernel.hard_decision(marg)

            if flips is not None and it > 1:
                flips += hard ^ prev_hard
            prev_hard = hard

            done = kernel.converged(hard)
            if done.any():
                done_idx = index[done]
                errors[done_idx] = hard[done]
                marginals[done_idx] = marg[done]
                iterations[done_idx] = it
                converged[done_idx] = True
                if flips is not None:
                    flips_out[done_idx] = flips[done]
                retire = done
                if groups is not None:
                    # First-success-wins: a converged row retires every
                    # other row of its group at this very iteration.
                    fresh = np.unique(groups[done])
                    killed = ~done & np.isin(groups, fresh)
                    if killed.any():
                        kill_idx = index[killed]
                        errors[kill_idx] = hard[killed]
                        marginals[kill_idx] = marg[killed]
                        iterations[kill_idx] = it
                        if flips is not None:
                            flips_out[kill_idx] = flips[killed]
                        retire = done | killed
                keep = ~retire
                if not keep.any():
                    return BPBatchResult(
                        errors, converged, iterations, marginals, flips_out
                    )
                index = index[keep]
                v2c = kernel.compact(v2c, keep)
                prev_hard = prev_hard[keep]
                if flips is not None:
                    flips = flips[keep]
                if prior.shape[0] != 1:
                    prior = prior[keep]
                if groups is not None:
                    groups = groups[keep]
                marg = marg[keep]
                hard = hard[keep]

        # Leftovers did not converge within the budget.
        errors[index] = hard
        marginals[index] = marg
        if flips is not None:
            flips_out[index] = flips
        return BPBatchResult(errors, converged, iterations, marginals, flips_out)

    def _decode_chunk_fused(
        self, syndromes, prior, groups, max_iter
    ) -> BPBatchResult:
        """Decode one chunk through an iteration-fusing kernel.

        The kernel runs spans of up to ``_FUSION_MAX_SPAN`` iterations
        per call, checking convergence in-kernel every iteration and
        freezing each row (or its whole ``stop_groups`` group — first
        success wins) at the exact iteration it converged, so outputs
        match the generic one-call-per-iteration loop; only the
        Python-side bookkeeping cadence changes.  The span is adaptive:
        1 until the first convergence activity (early iterations rarely
        converge but cheap spans keep retirement prompt on easy
        batches), then doubling — converged rows are compacted away
        between calls, so long spans run only on the shrinking hard
        tail.
        """
        kernel = self._kernel
        batch = syndromes.shape[0]
        n = self.edges.n_vars

        errors = np.zeros((batch, n), dtype=np.uint8)
        marginals = np.broadcast_to(prior, (batch, n)).copy()
        iterations = np.full(batch, max_iter, dtype=np.int64)
        converged = np.zeros(batch, dtype=bool)
        flips_out = (
            np.zeros((batch, n), dtype=np.int32)
            if self.track_oscillations else None
        )

        index = np.arange(batch)
        kernel.fused_start(syndromes, prior, self.track_oscillations)

        it = 0
        span = 1
        active = False
        while it < max_iter:
            width = min(span, max_iter - it)
            alphas = np.array(
                [self.damping.alpha(it + j + 1) for j in range(width)],
                dtype=self.dtype,
            )
            conv, frozen, stop_rel = kernel.fused_run(
                alphas, it, prior, groups
            )
            if frozen.any():
                active = True
                gone = np.nonzero(frozen)[0]
                done_idx = index[gone]
                errors[done_idx] = kernel.fused_hard[gone]
                marginals[done_idx] = kernel.fused_marg[gone]
                iterations[done_idx] = it + stop_rel[gone]
                converged[done_idx] = conv[gone]
                if flips_out is not None:
                    flips_out[done_idx] = kernel.fused_flips[gone]
                keep = ~frozen
                if not keep.any():
                    return BPBatchResult(
                        errors, converged, iterations, marginals, flips_out
                    )
                index = index[keep]
                kernel.fused_compact(keep)
                if prior.shape[0] != 1:
                    prior = prior[keep]
                if groups is not None:
                    groups = groups[keep]
            it += width
            if active:
                span = min(span * 2, _FUSION_MAX_SPAN)

        # Leftovers did not converge within the budget.
        errors[index] = kernel.fused_hard
        marginals[index] = kernel.fused_marg
        if flips_out is not None:
            flips_out[index] = kernel.fused_flips
        return BPBatchResult(errors, converged, iterations, marginals, flips_out)

    def _iteration_prior(self, prior, marg_prev, iteration: int) -> np.ndarray:
        """Prior used at ``iteration`` (hook for memory-augmented BP).

        Plain BP uses the channel prior every iteration; Mem-BP blends
        it with the previous marginals (:mod:`repro.decoders.membp`).
        """
        return prior

    def _check_update(self, v2c, sign_syn, alpha) -> np.ndarray:
        """Normalised min-sum check-node update (Eq. 6).

        Subclass hook: sum-product BP replaces this with the exact
        tanh rule; the default delegates to the kernel backend.
        """
        return self._kernel.check_update(v2c, sign_syn, alpha)

    def _variable_update(self, c2v, prior) -> tuple[np.ndarray, np.ndarray]:
        """Marginals (Eq. 7) and next variable-to-check messages (Eq. 5)."""
        return self._kernel.variable_update(c2v, prior)


def _concat_results(chunks: list[BatchDecodeResult]) -> BatchDecodeResult:
    return BatchDecodeResult.concat(chunks)


def _merge_rows(
    first: BatchDecodeResult, idx: np.ndarray, second: BatchDecodeResult
) -> BatchDecodeResult:
    """Overwrite rows ``idx`` of ``first`` with ``second`` — every
    column, so no pass-1 value (stage, parallel/initial iterations,
    ...) survives for a re-decoded row."""
    first.errors[idx] = second.errors
    first.converged[idx] = second.converged
    first.iterations[idx] = second.iterations
    first.parallel_iterations[idx] = second.parallel_iterations
    first.initial_iterations[idx] = second.initial_iterations
    first.stage[idx] = second.stage
    first.trials_attempted[idx] = second.trials_attempted
    first.winning_trial[idx] = second.winning_trial
    first.time_seconds[idx] = second.time_seconds
    first.marginals[idx] = second.marginals
    if first.flip_counts is not None:
        first.flip_counts[idx] = second.flip_counts
    return first

"""Candidate-selection strategies for BP-SF.

The paper selects the top-``|Φ|`` most *oscillating* bits; its future
work calls for "more effective candidate selection" (Sec. VII).  This
module collects the paper's selector plus alternatives, all sharing the
signature expected by :class:`~repro.decoders.bpsf.BPSFDecoder`'s
``candidate_selector`` parameter::

    selector(flip_counts, phi, marginals, rng) -> candidate indices

``combined`` is the extension: it ranks bits by a convex combination of
the oscillation rank and the posterior-unreliability rank, catching
bits that are unreliable without oscillating (stuck wrong) as well as
oscillating ones.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import rankdata

from repro.decoders.trial_vectors import top_oscillating_bits

__all__ = ["get_selector", "SELECTORS"]


def oscillation_selector(flip_counts, phi, marginals, rng):
    """The paper's selector: most frequently flipped bits."""
    return top_oscillating_bits(flip_counts, phi, marginals)


def least_reliable_selector(flip_counts, phi, marginals, rng):
    """Bits with the smallest posterior |LLR| (classical Chase order)."""
    order = np.argsort(np.abs(np.asarray(marginals)), kind="stable")
    return order[: min(int(phi), order.shape[0])]


def random_selector(flip_counts, phi, marginals, rng):
    """Uniformly random candidates (the ablation control)."""
    n = np.asarray(flip_counts).shape[0]
    return rng.choice(n, size=min(int(phi), n), replace=False)


def combined_selector(flip_counts, phi, marginals, rng, *,
                      oscillation_weight: float = 0.7):
    """Blend of oscillation rank and posterior-unreliability rank.

    Ranks are normalised to [0, 1] (1 = most suspicious) and mixed with
    weight ``oscillation_weight`` on the oscillation side.
    """
    flips = np.asarray(flip_counts, dtype=np.float64)
    reliability = np.abs(np.asarray(marginals, dtype=np.float64))
    n = flips.shape[0]
    if n == 1:
        return np.zeros(1, dtype=np.intp)
    # Tie-aware ranks in [0, 1]: equal inputs get equal ranks, so bits
    # that never flipped are not spuriously promoted.
    flip_rank = (rankdata(flips, method="average") - 1) / (n - 1)
    unrel_rank = (rankdata(-reliability, method="average") - 1) / (n - 1)
    score = oscillation_weight * flip_rank + (1 - oscillation_weight) * unrel_rank
    order = np.argsort(-score, kind="stable")
    return order[: min(int(phi), n)].astype(np.intp)


SELECTORS = {
    "oscillation": oscillation_selector,
    "least_reliable": least_reliable_selector,
    "random": random_selector,
    "combined": combined_selector,
}


def get_selector(name: str):
    """Look up a named candidate selector."""
    try:
        return SELECTORS[name]
    except KeyError:
        raise KeyError(
            f"unknown selector {name!r}; available: {sorted(SELECTORS)}"
        ) from None

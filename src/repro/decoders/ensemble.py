"""Prior/posterior-modification post-processors (related-work baselines).

The paper's Sec. IV stresses that BP-SF flips the **syndrome** rather
than the decoder's soft information, "which distinguishes our BP-SF
approach from that in [15], which modifies the posterior information
instead of the syndrome".  To make that comparison concrete this
module implements the posterior-modification family as decoders with
the same interface:

* :class:`PosteriorFlipDecoder` — Chytas et al. [5] / Koutsioumpas et
  al. [15] style: candidate (oscillating) bits have their *prior* LLR
  modified — erased to 0 or asserted to "this bit is an error" — and
  BP re-runs on the **original** syndrome once per trial subset.
* :class:`PerturbedEnsembleBP` — Poulin & Chung [19] style: on failure
  BP re-runs with randomly perturbed priors until one attempt
  converges.

Both use the per-shot-prior interface of
:class:`~repro.decoders.bp.MinSumBP`, so all trials of one shot decode
as a single vectorised batch, and both share BP-SF's first-success
return rule and iteration accounting, making ablations head-to-head
(``benchmarks/test_ablations.py``).
"""

from __future__ import annotations

import time

import numpy as np

from repro.decoders.base import (
    BatchDecodeResult,
    DecodeResult,
    Decoder,
    distribute_batch_time,
)
from repro.decoders.bp import MinSumBP
from repro.decoders.bpsf import attribute_pooled_trials
from repro.decoders.trial_vectors import (
    exhaustive_trials,
    sampled_trials,
    top_oscillating_bits,
)
from repro.problem import DecodingProblem

__all__ = ["PosteriorFlipDecoder", "PerturbedEnsembleBP"]


class _SpeculativePriorDecoder(Decoder):
    """Shared skeleton: initial BP, then prior-modified retries."""

    def __init__(
        self,
        problem: DecodingProblem,
        *,
        max_iter: int = 100,
        trial_iter: int | None = None,
        seed: int | None = None,
        **kwargs,
    ):
        self.problem = problem
        kwargs.setdefault("track_oscillations", True)
        self.bp_initial = MinSumBP(problem, max_iter=max_iter, **kwargs)
        kwargs_trial = dict(kwargs, track_oscillations=False)
        self.bp_trial = MinSumBP(
            problem,
            max_iter=max_iter if trial_iter is None else trial_iter,
            **kwargs_trial,
        )
        self._rng = np.random.default_rng(seed)

    def reseed(self, rng: np.random.Generator) -> None:
        """Reset the trial-sampling stream (sharded-engine discipline)."""
        self._rng = rng

    def decode(self, syndrome) -> DecodeResult:
        start = time.perf_counter()
        result = self.decode_many(np.atleast_2d(syndrome)).to_results()[0]
        result.time_seconds = time.perf_counter() - start
        return result

    def decode_many(self, syndromes) -> BatchDecodeResult:
        """Batch decode with cross-shot trial pooling.

        The per-shot-prior interface of :class:`MinSumBP` lets the
        prior-modified retries of **all** failed shots decode as one
        ``decode_many`` call (each trial row carries its own prior); a
        shot-index map attributes winners, mirroring
        :meth:`repro.decoders.bpsf.BPSFDecoder.decode_many`.
        """
        start = time.perf_counter()
        syndromes = np.atleast_2d(np.asarray(syndromes, dtype=np.uint8))
        initial = self.bp_initial.decode_many(syndromes)

        result = BatchDecodeResult(
            errors=initial.errors.copy(),
            converged=initial.converged.copy(),
            iterations=initial.iterations.astype(np.int64).copy(),
            marginals=initial.marginals,
            flip_counts=initial.flip_counts,
        )

        shot_counts: list[tuple[int, int]] = []   # (shot, n_trials)
        pooled_priors: list[np.ndarray] = []
        pooled_synd: list[np.ndarray] = []
        for i in np.nonzero(~initial.converged)[0]:
            priors = self._trial_priors(initial[int(i)])
            if priors.shape[0] == 0:
                continue
            shot_counts.append((int(i), priors.shape[0]))
            pooled_priors.append(priors)
            pooled_synd.append(
                np.broadcast_to(
                    syndromes[i], (priors.shape[0], syndromes.shape[1])
                )
            )

        if pooled_synd:
            pooled = self.bp_trial.decode_many(
                np.concatenate(pooled_synd),
                prior_llr=np.concatenate(pooled_priors),
            )
            attribute_pooled_trials(
                pooled,
                shot_counts,
                self.bp_trial.max_iter,
                "serial",
                result,
                # No syndrome was modified, so no flip-back is needed.
                lambda shot, winner, pool_row: pooled.errors[pool_row].copy(),
            )

        elapsed = time.perf_counter() - start
        distribute_batch_time(result, elapsed)
        return result

    def _trial_priors(self, initial: DecodeResult) -> np.ndarray:
        raise NotImplementedError


class PosteriorFlipDecoder(_SpeculativePriorDecoder):
    """Oscillation-guided prior modification on the original syndrome.

    Candidate bits are selected exactly as in BP-SF (top-``|Φ|``
    oscillating); each trial subset has its members' prior LLR replaced
    by ``mode``:

    * ``"erase"`` — LLR 0 (the bit becomes an erasure, maximum
      uncertainty);
    * ``"assert"`` — LLR ``-saturation`` (the bit is declared an
      error, the soft-domain analogue of BP-SF's hard flip).

    Parameters mirror :class:`~repro.decoders.bpsf.BPSFDecoder`
    (``phi``, ``w_max``, ``n_s``, ``strategy``).
    """

    def __init__(
        self,
        problem: DecodingProblem,
        *,
        phi: int = 8,
        w_max: int = 1,
        n_s: int = 5,
        strategy: str = "exhaustive",
        mode: str = "erase",
        saturation: float | None = None,
        **kwargs,
    ):
        if strategy not in ("exhaustive", "sampled"):
            raise ValueError(f"unknown strategy {strategy!r}")
        if mode not in ("erase", "assert"):
            raise ValueError(f"unknown mode {mode!r}")
        super().__init__(problem, **kwargs)
        self.phi = int(phi)
        self.w_max = int(w_max)
        self.n_s = int(n_s)
        self.strategy = strategy
        self.mode = mode
        self.saturation = (
            self.bp_trial.clamp if saturation is None else float(saturation)
        )
        self.name = f"PosteriorFlip({mode},phi={phi},w={w_max})"

    def _trial_priors(self, initial: DecodeResult) -> np.ndarray:
        candidates = top_oscillating_bits(
            initial.flip_counts, self.phi, initial.marginals
        )
        if self.strategy == "exhaustive":
            trials = exhaustive_trials(candidates, self.w_max)
        else:
            trials = sampled_trials(
                candidates, self.w_max, self.n_s, self._rng
            )
        base = self.bp_trial._prior_llr.astype(np.float64)
        value = 0.0 if self.mode == "erase" else -self.saturation
        priors = np.tile(base, (len(trials), 1))
        for row, trial in enumerate(trials):
            priors[row, list(trial)] = value
        return priors


class PerturbedEnsembleBP(_SpeculativePriorDecoder):
    """Random prior perturbation ensemble (Poulin-Chung style).

    On failure, ``n_attempts`` BP retries run with priors multiplied by
    iid ``U(1-spread, 1+spread)`` noise (a fresh draw per attempt).
    """

    def __init__(
        self,
        problem: DecodingProblem,
        *,
        n_attempts: int = 10,
        spread: float = 0.5,
        **kwargs,
    ):
        if n_attempts < 1:
            raise ValueError("n_attempts must be at least 1")
        if not 0.0 < spread < 1.0:
            raise ValueError("spread must lie in (0, 1)")
        super().__init__(problem, **kwargs)
        self.n_attempts = int(n_attempts)
        self.spread = float(spread)
        self.name = f"PerturbedBP(x{n_attempts},±{spread})"

    def _trial_priors(self, initial: DecodeResult) -> np.ndarray:
        base = self.bp_trial._prior_llr.astype(np.float64)
        noise = self._rng.uniform(
            1.0 - self.spread,
            1.0 + self.spread,
            size=(self.n_attempts, base.shape[0]),
        )
        return base[None, :] * noise

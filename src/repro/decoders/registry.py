"""Decoder registry: canonical factory per decoder family.

One place that knows how to build every decoder in the repository with
small, deterministic, test-scale parameters.  The batch/serial parity
suite iterates this registry to assert that ``decode_many`` and a loop
of ``decode`` calls agree for *every* decoder; experiment drivers can
use it to sweep families without repeating configuration.

Factories take a :class:`~repro.problem.DecodingProblem` and return a
fresh decoder.  Every factory is deterministic (seeded where the
decoder samples), so two instances built from the same problem decode
identically.  :class:`~repro.decoders.parallel.ParallelBPSFDecoder` is
excluded: its first-success collection over a process pool depends on
worker scheduling, so per-shot fields like ``winning_trial`` are not
reproducible.
"""

from __future__ import annotations

from typing import Callable

from repro.decoders.base import Decoder
from repro.decoders.bp import MinSumBP
from repro.decoders.bposd import BPOSDDecoder
from repro.decoders.bpsf import BPSFDecoder
from repro.decoders.ensemble import PerturbedEnsembleBP, PosteriorFlipDecoder
from repro.decoders.gdg import GDGDecoder
from repro.decoders.kernels import use_backend
from repro.decoders.layered import LayeredMinSumBP
from repro.decoders.membp import MemoryMinSumBP
from repro.decoders.relay import RelayBP
from repro.decoders.sum_product import SumProductBP
from repro.problem import DecodingProblem

__all__ = ["DECODER_REGISTRY", "get_decoder", "make_decoder_factory"]

DecoderFactory = Callable[[DecodingProblem], Decoder]

DECODER_REGISTRY: dict[str, DecoderFactory] = {
    "min_sum_bp": lambda p: MinSumBP(p, max_iter=12),
    "sum_product_bp": lambda p: SumProductBP(p, max_iter=12),
    "layered_bp": lambda p: LayeredMinSumBP(p, max_iter=12),
    "memory_bp": lambda p: MemoryMinSumBP(p, gamma=0.5, max_iter=12),
    "bpsf": lambda p: BPSFDecoder(
        p, max_iter=10, phi=8, w_max=1, strategy="exhaustive"
    ),
    "bpsf_sampled": lambda p: BPSFDecoder(
        p, max_iter=10, phi=10, w_max=2, n_s=4, strategy="sampled", seed=11
    ),
    "bpsf_parallel": lambda p: BPSFDecoder(
        p, max_iter=10, phi=8, w_max=1, strategy="exhaustive",
        selection="parallel",
    ),
    "bposd": lambda p: BPOSDDecoder(p, max_iter=10, osd_order=4),
    "relay_bp": lambda p: RelayBP(
        p, leg_iters=10, num_legs=2, seed=5
    ),
    "gdg": lambda p: GDGDecoder(
        p, max_iter=10, max_depth=2, beam_width=4
    ),
    "posterior_flip": lambda p: PosteriorFlipDecoder(
        p, max_iter=10, phi=6, w_max=1, strategy="exhaustive"
    ),
    "perturbed_bp": lambda p: PerturbedEnsembleBP(
        p, max_iter=10, n_attempts=4, spread=0.4, seed=13
    ),
}


def get_decoder(
    name: str, problem: DecodingProblem, *, backend: str | None = None
) -> Decoder:
    """Build the registry decoder ``name`` for ``problem``.

    ``backend`` optionally pins the BP kernel backend
    (``"reference"``/``"fused"``) for every BP instance the factory
    builds — including inner decoders of composites like BP-SF — via a
    scoped :func:`repro.decoders.kernels.use_backend` override, so
    factories whose signatures predate the knob still honour it.
    """
    try:
        factory = DECODER_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown decoder {name!r}; one of {sorted(DECODER_REGISTRY)}"
        ) from None
    if backend is None:
        return factory(problem)
    with use_backend(backend):
        return factory(problem)


class _RegistryFactory:
    """Picklable ``f(problem) -> Decoder`` carrying a backend choice.

    The sharded experiment engine resolves registry *names* inside each
    worker process, where a CLI-selected backend would otherwise be
    lost; shipping this factory instead pins the backend in the worker
    too, keeping sharded runs bit-identical to serial ones for every
    backend.
    """

    def __init__(self, name: str, backend: str | None = None) -> None:
        self.name = name
        self.backend = backend

    def __call__(self, problem: DecodingProblem) -> Decoder:
        return get_decoder(self.name, problem, backend=self.backend)

    def __repr__(self) -> str:
        return f"_RegistryFactory({self.name!r}, backend={self.backend!r})"


def make_decoder_factory(
    name: str, backend: str | None = None
) -> _RegistryFactory:
    """A picklable factory for registry decoder ``name``.

    Validates the name eagerly (same ``KeyError`` as
    :func:`get_decoder`) so misconfiguration fails before any worker
    pool spins up.
    """
    if name not in DECODER_REGISTRY:
        raise KeyError(
            f"unknown decoder {name!r}; one of {sorted(DECODER_REGISTRY)}"
        )
    return _RegistryFactory(name, backend)

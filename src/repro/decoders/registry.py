"""Decoder registry: canonical factory per decoder family.

One place that knows how to build every decoder in the repository with
small, deterministic, test-scale parameters.  The batch/serial parity
suite iterates this registry to assert that ``decode_many`` and a loop
of ``decode`` calls agree for *every* decoder; experiment drivers can
use it to sweep families without repeating configuration.

Factories take a :class:`~repro.problem.DecodingProblem` and return a
fresh decoder.  Every factory is deterministic (seeded where the
decoder samples), so two instances built from the same problem decode
identically.  :class:`~repro.decoders.parallel.ParallelBPSFDecoder` is
excluded: its first-success collection over a process pool depends on
worker scheduling, so per-shot fields like ``winning_trial`` are not
reproducible.
"""

from __future__ import annotations

from typing import Callable

from repro.decoders.bp import MinSumBP
from repro.decoders.bposd import BPOSDDecoder
from repro.decoders.bpsf import BPSFDecoder
from repro.decoders.ensemble import PerturbedEnsembleBP, PosteriorFlipDecoder
from repro.decoders.gdg import GDGDecoder
from repro.decoders.layered import LayeredMinSumBP
from repro.decoders.membp import MemoryMinSumBP
from repro.decoders.relay import RelayBP
from repro.decoders.sum_product import SumProductBP
from repro.problem import DecodingProblem

__all__ = ["DECODER_REGISTRY", "get_decoder"]

DecoderFactory = Callable[[DecodingProblem], object]

DECODER_REGISTRY: dict[str, DecoderFactory] = {
    "min_sum_bp": lambda p: MinSumBP(p, max_iter=12),
    "sum_product_bp": lambda p: SumProductBP(p, max_iter=12),
    "layered_bp": lambda p: LayeredMinSumBP(p, max_iter=12),
    "memory_bp": lambda p: MemoryMinSumBP(p, gamma=0.5, max_iter=12),
    "bpsf": lambda p: BPSFDecoder(
        p, max_iter=10, phi=8, w_max=1, strategy="exhaustive"
    ),
    "bpsf_sampled": lambda p: BPSFDecoder(
        p, max_iter=10, phi=10, w_max=2, n_s=4, strategy="sampled", seed=11
    ),
    "bpsf_parallel": lambda p: BPSFDecoder(
        p, max_iter=10, phi=8, w_max=1, strategy="exhaustive",
        selection="parallel",
    ),
    "bposd": lambda p: BPOSDDecoder(p, max_iter=10, osd_order=4),
    "relay_bp": lambda p: RelayBP(
        p, leg_iters=10, num_legs=2, seed=5
    ),
    "gdg": lambda p: GDGDecoder(
        p, max_iter=10, max_depth=2, beam_width=4
    ),
    "posterior_flip": lambda p: PosteriorFlipDecoder(
        p, max_iter=10, phi=6, w_max=1, strategy="exhaustive"
    ),
    "perturbed_bp": lambda p: PerturbedEnsembleBP(
        p, max_iter=10, n_attempts=4, spread=0.4, seed=13
    ),
}


def get_decoder(name: str, problem: DecodingProblem):
    """Build the registry decoder ``name`` for ``problem``."""
    try:
        factory = DECODER_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown decoder {name!r}; one of {sorted(DECODER_REGISTRY)}"
        ) from None
    return factory(problem)

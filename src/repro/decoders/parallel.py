"""Multi-process BP-SF executor (paper Sec. VI, "Parallel CPU version").

Mirrors the paper's architecture: a persistent pool of worker processes
with input/output queues.  The manager (this process) runs the initial
BP, generates trial vectors, splits trial syndromes into small batches
and feeds the input queue; workers decode batches and push results; the
manager returns as soon as a valid solution arrives.  Each syndrome
carries a serial number so stale results from an abandoned decode are
discarded rather than mistaken for current ones.
"""

from __future__ import annotations

import multiprocessing as mp
import queue
import time

import numpy as np

from repro.decoders.base import (
    BatchDecodeResult,
    DecodeResult,
    Decoder,
    distribute_batch_time,
)
from repro.decoders.bp import MinSumBP
from repro.decoders.bpsf import BPSFDecoder
from repro.problem import DecodingProblem

__all__ = ["ParallelBPSFDecoder"]


def _worker_loop(in_queue, out_queue, problem, bp_params):
    """Worker process: decode trial-syndrome batches until poisoned."""
    bp = MinSumBP(problem, **bp_params)
    while True:
        item = in_queue.get()
        if item is None:
            return
        serial_no, trial_ids, syndromes = item
        batch = bp.decode_many(syndromes)
        out_queue.put(
            (
                serial_no,
                trial_ids,
                batch.converged.copy(),
                batch.iterations.copy(),
                batch.errors[batch.converged].copy(),
            )
        )


class ParallelBPSFDecoder(Decoder):
    """BP-SF with trial decoding distributed over worker processes.

    Logical behaviour matches :class:`BPSFDecoder` (same candidate
    selection and trial generation); only the execution of trials
    differs.  Use as a context manager, or call :meth:`close`.
    """

    def __init__(
        self,
        problem: DecodingProblem,
        *,
        processes: int = 4,
        batch_trials: int = 8,
        max_iter: int = 100,
        phi: int = 50,
        w_max: int = 10,
        n_s: int = 10,
        strategy: str = "sampled",
        trial_max_iter: int | None = None,
        damping: str | float = "adaptive",
        seed: int = 0,
    ):
        self.problem = problem
        self.processes = int(processes)
        self.batch_trials = int(batch_trials)
        # Reuse the serial implementation for the initial stage and for
        # trial generation so the two versions cannot drift apart.
        self._serial = BPSFDecoder(
            problem,
            max_iter=max_iter,
            phi=phi,
            w_max=w_max,
            n_s=n_s,
            strategy=strategy,
            trial_max_iter=trial_max_iter,
            damping=damping,
            seed=seed,
        )
        self._trial_budget = self._serial.bp_trial.max_iter
        ctx = mp.get_context("fork")
        self._in_queue = ctx.Queue()
        self._out_queue = ctx.Queue()
        bp_params = {
            "max_iter": trial_max_iter or max_iter,
            "damping": damping,
        }
        self._workers = [
            ctx.Process(
                target=_worker_loop,
                args=(self._in_queue, self._out_queue, problem, bp_params),
                daemon=True,
            )
            for _ in range(self.processes)
        ]
        for w in self._workers:
            w.start()
        self._serial_no = 0
        self.name = f"BP-SF(P={processes})"

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Terminate the worker pool."""
        for _ in self._workers:
            self._in_queue.put(None)
        for w in self._workers:
            w.join(timeout=5)
            if w.is_alive():
                w.terminate()
        self._workers = []

    def __enter__(self) -> "ParallelBPSFDecoder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- decoding ------------------------------------------------------------

    def reseed(self, rng: np.random.Generator) -> None:
        """Forward to the serial implementation's trial sampler."""
        self._serial.reseed(rng)

    def decode(self, syndrome) -> DecodeResult:
        start = time.perf_counter()
        syndrome = np.asarray(syndrome, dtype=np.uint8).reshape(-1)
        initial = self._serial.bp_initial.decode(syndrome)
        if initial.converged:
            initial.time_seconds = time.perf_counter() - start
            return initial
        return self._decode_failed(syndrome, initial, start)

    def decode_many(self, syndromes) -> BatchDecodeResult:
        """Batch decode: initial BP vectorised, trials via the pool.

        Failed shots are dispatched one at a time — the pool holds one
        shot's trial batches at a time.  Interleaving several shots'
        batches would pipeline the workers but make ``winning_trial``
        depend on worker scheduling; this executor keeps the serial
        first-success semantics (see the registry note on why it is
        excluded from parity testing even so).
        """
        start = time.perf_counter()
        syndromes = np.atleast_2d(np.asarray(syndromes, dtype=np.uint8))
        initial = self._serial.bp_initial.decode_many(syndromes)
        out = []
        for i in range(len(initial)):
            if initial.converged[i]:
                out.append(initial[i])
            else:
                out.append(
                    self._decode_failed(
                        syndromes[i], initial[i], time.perf_counter()
                    )
                )
        result = BatchDecodeResult.from_results(out)
        # Whole-batch wall time attributed per shot in proportion to
        # iteration cost, matching the other decoders' batch accounting
        # (the per-shot wall times above would otherwise omit the
        # shared initial-BP stage).
        elapsed = time.perf_counter() - start
        distribute_batch_time(result, elapsed)
        return result

    def _decode_failed(self, syndrome, initial, start) -> DecodeResult:
        """Dispatch the SF trials of one failed shot to the workers."""
        trials = self._serial.generate_trials(
            initial.flip_counts, initial.marginals
        )
        if not trials:
            initial.stage = "failed"
            initial.time_seconds = time.perf_counter() - start
            return initial
        trial_synd = self._serial.trial_syndromes(syndrome, trials)

        self._serial_no += 1
        serial_no = self._serial_no
        n_batches = 0
        for lo in range(0, len(trials), self.batch_trials):
            ids = np.arange(lo, min(lo + self.batch_trials, len(trials)))
            self._in_queue.put((serial_no, ids, trial_synd[ids]))
            n_batches += 1

        return self._collect(serial_no, n_batches, trials, initial, start)

    def _collect(self, serial_no, n_batches, trials, initial, start):
        init_iters = int(initial.iterations)
        received = 0
        best: tuple[int, np.ndarray, int] | None = None  # (trial, error, iters)
        while received < n_batches:
            sn, trial_ids, converged, iterations, errors = self._out_queue.get()
            if sn != serial_no:
                continue  # stale result from an abandoned decode
            received += 1
            if not converged.any() or best is not None:
                continue
            local = int(np.argmax(converged))
            trial_index = int(trial_ids[local])
            error = errors[int(converged[:local].sum())].copy()
            error[list(trials[trial_index])] ^= 1
            best = (trial_index, error, int(iterations[local]))
            # Paper: signal workers to stop; here the remaining batches
            # are small and drain quickly, keeping results exact.
        elapsed = time.perf_counter() - start
        if best is None:
            return DecodeResult(
                error=initial.error,
                converged=False,
                iterations=init_iters + self._trial_budget * len(trials),
                parallel_iterations=init_iters + self._trial_budget,
                initial_iterations=init_iters,
                stage="failed",
                trials_attempted=len(trials),
                marginals=initial.marginals,
                flip_counts=initial.flip_counts,
                time_seconds=elapsed,
            )
        trial_index, error, iters = best
        return DecodeResult(
            error=error,
            converged=True,
            iterations=init_iters + iters,
            parallel_iterations=init_iters + iters,
            initial_iterations=init_iters,
            stage="post",
            trials_attempted=len(trials),
            winning_trial=trial_index,
            marginals=initial.marginals,
            flip_counts=initial.flip_counts,
            time_seconds=elapsed,
        )

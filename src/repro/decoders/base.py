"""Decoder interface and result record."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

__all__ = ["DecodeResult", "Decoder"]


@dataclass
class DecodeResult:
    """Outcome of decoding one syndrome.

    Attributes
    ----------
    error:
        Estimated error vector (one bit per mechanism).
    converged:
        Whether the estimate satisfies the syndrome.
    iterations:
        *Serial-equivalent* BP iterations spent (the paper's Fig. 12
        accounting: cumulative over the initial attempt and every trial
        attempted before the first success).
    parallel_iterations:
        Latency in iterations when all trials run concurrently (initial
        iterations plus the fastest successful trial).
    initial_iterations:
        Iterations of the initial BP stage alone (equals ``iterations``
        when no post-processing ran).
    stage:
        ``"initial"`` (plain BP sufficed), ``"post"`` (post-processing
        produced the result) or ``"failed"``.
    trials_attempted / winning_trial:
        Speculative-decoding bookkeeping (BP-SF only).
    marginals / flip_counts:
        Posterior LLRs and bit-flip oscillation counters of the
        (initial) BP run, when tracked.
    time_seconds:
        Wall-clock or modelled decode time, when measured.
    """

    error: np.ndarray
    converged: bool
    iterations: int = 0
    parallel_iterations: int | None = None
    initial_iterations: int | None = None
    stage: str = "initial"
    trials_attempted: int = 0
    winning_trial: int | None = None
    marginals: np.ndarray | None = field(default=None, repr=False)
    flip_counts: np.ndarray | None = field(default=None, repr=False)
    time_seconds: float = 0.0

    def __post_init__(self):
        if self.parallel_iterations is None:
            self.parallel_iterations = self.iterations
        if self.initial_iterations is None:
            self.initial_iterations = self.iterations


class Decoder(ABC):
    """Base class: decoders are bound to a problem at construction."""

    @abstractmethod
    def decode(self, syndrome) -> DecodeResult:
        """Decode a single syndrome vector."""

    def decode_batch(self, syndromes) -> list[DecodeResult]:
        """Decode a batch of syndromes (default: loop over rows)."""
        return [self.decode(s) for s in np.atleast_2d(syndromes)]

"""Decoder interface and result records.

Two result types share the same vocabulary:

* :class:`DecodeResult` — one decoded syndrome, scalar fields;
* :class:`BatchDecodeResult` — a whole batch, one **array column** per
  field.  This is the first-class interchange format of the decoding
  pipeline: decoders produce it natively via :meth:`Decoder.decode_many`
  and the simulation/analysis layers consume its columns directly
  (failure masks, iteration histograms, latency models) without ever
  materialising per-shot Python objects on the hot path.

Migration notes for ``decode_batch`` callers
--------------------------------------------
``decode_batch`` (returning ``list[DecodeResult]``) remains available on
every decoder but is now a compatibility shim over ``decode_many``:

===============================================  ==============================
old (per-shot objects)                           new (array columns)
===============================================  ==============================
``np.stack([r.error for r in rs])``              ``batch.errors``
``[r.converged for r in rs]``                    ``batch.converged``
``[r.iterations for r in rs]``                   ``batch.iterations``
``sum(r.stage == "post" for r in rs)``           ``(batch.stage == "post").sum()``
``[r.winning_trial for r in rs]``                ``batch.winning_trial`` (``-1`` = none)
``rs[i]``                                        ``batch[i]`` or ``batch.to_results()[i]``
===============================================  ==============================

New code should call ``decode_many`` and keep the arrays.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = [
    "DecodeResult",
    "BatchDecodeResult",
    "Decoder",
    "distribute_batch_time",
]

# Fixed-width stage vocabulary shared by both result types.
_STAGE_DTYPE = "<U7"  # "initial" | "post" | "failed"


@dataclass
class DecodeResult:
    """Outcome of decoding one syndrome.

    Attributes
    ----------
    error:
        Estimated error vector (one bit per mechanism).
    converged:
        Whether the estimate satisfies the syndrome.
    iterations:
        *Serial-equivalent* BP iterations spent (the paper's Fig. 12
        accounting: cumulative over the initial attempt and every trial
        attempted before the first success).
    parallel_iterations:
        Latency in iterations when all trials run concurrently (initial
        iterations plus the fastest successful trial).
    initial_iterations:
        Iterations of the initial BP stage alone (equals ``iterations``
        when no post-processing ran).
    stage:
        ``"initial"`` (plain BP sufficed), ``"post"`` (post-processing
        produced the result) or ``"failed"``.
    trials_attempted / winning_trial:
        Speculative-decoding bookkeeping (BP-SF only).
    marginals / flip_counts:
        Posterior LLRs and bit-flip oscillation counters of the
        (initial) BP run, when tracked.
    time_seconds:
        Wall-clock or modelled decode time, when measured.
    """

    error: np.ndarray
    converged: bool
    iterations: int = 0
    parallel_iterations: int | None = None
    initial_iterations: int | None = None
    stage: str = "initial"
    trials_attempted: int = 0
    winning_trial: int | None = None
    marginals: np.ndarray | None = field(default=None, repr=False)
    flip_counts: np.ndarray | None = field(default=None, repr=False)
    time_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.parallel_iterations is None:
            self.parallel_iterations = self.iterations
        if self.initial_iterations is None:
            self.initial_iterations = self.iterations


@dataclass
class BatchDecodeResult:
    """Array-first outcome of decoding a batch of syndromes.

    Every per-shot attribute of :class:`DecodeResult` appears here as a
    column indexed by shot.  Optional columns default sensibly in
    ``__post_init__`` so plain-BP decoders can construct the record from
    their core arrays alone:

    * ``parallel_iterations`` / ``initial_iterations`` default to copies
      of ``iterations`` (no post-processing ran);
    * ``stage`` defaults to ``"initial"`` where ``converged`` else
      ``"failed"``;
    * ``trials_attempted`` defaults to zeros, ``winning_trial`` to
      ``-1`` (the array encoding of "no winning trial");
    * ``time_seconds`` defaults to zeros.

    The field order of the required columns is backward compatible with
    the historical ``BPBatchResult`` (``errors, converged, iterations,
    marginals, flip_counts``), which is now an alias of this class.
    ``to_results()`` is retained only as a compatibility shim for
    per-shot-object consumers.
    """

    errors: np.ndarray                         # (batch, n) uint8
    converged: np.ndarray                      # (batch,) bool
    iterations: np.ndarray                     # (batch,) int64
    marginals: np.ndarray | None = field(default=None, repr=False)
    flip_counts: np.ndarray | None = field(default=None, repr=False)
    parallel_iterations: np.ndarray | None = None   # (batch,) int64
    initial_iterations: np.ndarray | None = None    # (batch,) int64
    stage: np.ndarray | None = None                 # (batch,) <U7
    trials_attempted: np.ndarray | None = None      # (batch,) int64
    winning_trial: np.ndarray | None = None         # (batch,) int64, -1 = none
    time_seconds: np.ndarray | None = None          # (batch,) float64

    def __post_init__(self) -> None:
        batch = self.errors.shape[0]
        self.converged = np.asarray(self.converged, dtype=bool)
        self.iterations = np.asarray(self.iterations, dtype=np.int64)
        if self.parallel_iterations is None:
            self.parallel_iterations = self.iterations.copy()
        else:
            self.parallel_iterations = np.asarray(
                self.parallel_iterations, dtype=np.int64
            )
        if self.initial_iterations is None:
            self.initial_iterations = self.iterations.copy()
        else:
            self.initial_iterations = np.asarray(
                self.initial_iterations, dtype=np.int64
            )
        if self.stage is None:
            self.stage = np.where(
                self.converged, "initial", "failed"
            ).astype(_STAGE_DTYPE)
        else:
            self.stage = np.asarray(self.stage, dtype=_STAGE_DTYPE)
        if self.trials_attempted is None:
            self.trials_attempted = np.zeros(batch, dtype=np.int64)
        else:
            self.trials_attempted = np.asarray(
                self.trials_attempted, dtype=np.int64
            )
        if self.winning_trial is None:
            self.winning_trial = np.full(batch, -1, dtype=np.int64)
        else:
            self.winning_trial = np.asarray(
                self.winning_trial, dtype=np.int64
            )
        if self.time_seconds is None:
            self.time_seconds = np.zeros(batch, dtype=np.float64)
        else:
            self.time_seconds = np.asarray(
                self.time_seconds, dtype=np.float64
            )

    # -- container protocol ---------------------------------------------

    def __len__(self) -> int:
        return self.errors.shape[0]

    def __getitem__(self, i: int) -> DecodeResult:
        """Per-shot view as a :class:`DecodeResult` (compat accessor)."""
        i = int(i)
        winner = int(self.winning_trial[i])
        return DecodeResult(
            error=self.errors[i],
            converged=bool(self.converged[i]),
            iterations=int(self.iterations[i]),
            parallel_iterations=int(self.parallel_iterations[i]),
            initial_iterations=int(self.initial_iterations[i]),
            stage=str(self.stage[i]),
            trials_attempted=int(self.trials_attempted[i]),
            winning_trial=None if winner < 0 else winner,
            marginals=None if self.marginals is None else self.marginals[i],
            flip_counts=(
                None if self.flip_counts is None else self.flip_counts[i]
            ),
            time_seconds=float(self.time_seconds[i]),
        )

    # -- aggregate views -------------------------------------------------

    @property
    def n_initial(self) -> int:
        """Shots solved by the initial BP stage alone."""
        return int((self.stage == "initial").sum())

    @property
    def n_post(self) -> int:
        """Shots rescued by post-processing."""
        return int((self.stage == "post").sum())

    @property
    def n_unconverged(self) -> int:
        """Shots with no syndrome-satisfying output."""
        return int((~self.converged).sum())

    # -- conversion -------------------------------------------------------

    def to_results(self) -> list[DecodeResult]:
        """Convert to per-shot :class:`DecodeResult` records.

        Compatibility shim only — array consumers should read the
        columns directly.
        """
        return [self[i] for i in range(len(self))]

    @classmethod
    def from_results(cls, results: list[DecodeResult]) -> "BatchDecodeResult":
        """Pack per-shot records into one array-first batch.

        Used by the default :meth:`Decoder.decode_many` so decoders
        without a native batch path still speak the array contract.
        ``marginals``/``flip_counts`` columns are kept only when every
        shot carries them (a ragged column has no array form).
        """
        if not results:
            raise ValueError("at least one result is required")
        marginals = None
        if all(r.marginals is not None for r in results):
            marginals = np.stack([r.marginals for r in results])
        flip_counts = None
        if all(r.flip_counts is not None for r in results):
            flip_counts = np.stack([r.flip_counts for r in results])
        return cls(
            errors=np.stack([np.asarray(r.error) for r in results]),
            converged=np.asarray([r.converged for r in results], dtype=bool),
            iterations=np.asarray(
                [r.iterations for r in results], dtype=np.int64
            ),
            marginals=marginals,
            flip_counts=flip_counts,
            parallel_iterations=np.asarray(
                [r.parallel_iterations for r in results], dtype=np.int64
            ),
            initial_iterations=np.asarray(
                [r.initial_iterations for r in results], dtype=np.int64
            ),
            stage=np.asarray([r.stage for r in results], dtype=_STAGE_DTYPE),
            trials_attempted=np.asarray(
                [r.trials_attempted for r in results], dtype=np.int64
            ),
            winning_trial=np.asarray(
                [-1 if r.winning_trial is None else r.winning_trial
                 for r in results],
                dtype=np.int64,
            ),
            time_seconds=np.asarray(
                [r.time_seconds for r in results], dtype=np.float64
            ),
        )

    @staticmethod
    def concat(chunks: list["BatchDecodeResult"]) -> "BatchDecodeResult":
        """Concatenate batches along the shot axis."""
        if not chunks:
            raise ValueError("at least one chunk is required")
        if len(chunks) == 1:
            return chunks[0]

        def _cat(column: str) -> Any:
            parts = [getattr(c, column) for c in chunks]
            if any(p is None for p in parts):
                return None
            return np.concatenate(parts)

        return BatchDecodeResult(
            errors=_cat("errors"),
            converged=_cat("converged"),
            iterations=_cat("iterations"),
            marginals=_cat("marginals"),
            flip_counts=_cat("flip_counts"),
            parallel_iterations=_cat("parallel_iterations"),
            initial_iterations=_cat("initial_iterations"),
            stage=_cat("stage"),
            trials_attempted=_cat("trials_attempted"),
            winning_trial=_cat("winning_trial"),
            time_seconds=_cat("time_seconds"),
        )


def distribute_batch_time(
    result: "BatchDecodeResult", elapsed: float
) -> None:
    """Attribute a batch's wall time to shots proportionally to cost.

    Batch decoders measure one wall-clock figure for the whole
    ``decode_many`` call.  Smearing it uniformly (``elapsed / batch``)
    flattens the latency distribution that ``summarize_times`` and the
    Fig. 15-style CPU plots report.  Instead, each shot is charged a
    share of ``elapsed`` proportional to its serial-equivalent
    ``iterations`` column — the best available per-shot cost proxy —
    so the column sums to the measured batch wall time while cheap
    initial-convergence shots stay cheap and trial-heavy shots stay
    expensive.  A batch whose iteration column is all zeros falls back
    to the uniform split.
    """
    weights = result.iterations.astype(np.float64)
    total = weights.sum()
    batch = weights.shape[0]
    if total > 0:
        result.time_seconds = elapsed * weights / total
    else:
        result.time_seconds = np.full(batch, elapsed / batch)


class Decoder(ABC):
    """Base class: decoders are bound to a problem at construction.

    The batch-native entry point is :meth:`decode_many`, returning a
    :class:`BatchDecodeResult`.  Decoders with a vectorised core
    override it; the default loops :meth:`decode` and packs the records
    into arrays so every decoder honours the array contract.
    :meth:`decode_batch` is a compatibility shim kept for per-shot
    object consumers (see the module docstring for migration notes).
    """

    @abstractmethod
    def decode(self, syndrome: np.ndarray) -> DecodeResult:
        """Decode a single syndrome vector."""

    def decode_many(self, syndromes: np.ndarray) -> BatchDecodeResult:
        """Decode a ``(batch, n_checks)`` array of syndromes."""
        return BatchDecodeResult.from_results(
            [self.decode(s) for s in np.atleast_2d(syndromes)]
        )

    def reseed(self, rng: np.random.Generator) -> None:
        """Reset the decoder's decode-time sampling stream, if any.

        The sharded experiment engine calls this once per shard with a
        generator spawned from the shard's ``SeedSequence``, so
        decoders that sample during decoding (BP-SF trial generation,
        prior-perturbation ensembles) produce identical results for a
        given master seed regardless of how shards are spread over
        workers.  Deterministic decoders need not override the default
        no-op.
        """

    def decode_batch(self, syndromes: np.ndarray) -> list[DecodeResult]:
        """Decode a batch of syndromes (compat shim over decode_many).

        An empty batch returns ``[]``, as the historical per-shot loop
        did; ``decode_many`` itself requires at least one shot.
        """
        if np.asarray(syndromes).size == 0:
            return []
        return self.decode_many(syndromes).to_results()

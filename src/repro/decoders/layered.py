"""Layered (serial-schedule) min-sum BP.

The paper uses layered BP for the ``[[288,12,18]]`` code under circuit
noise (Fig. 8), where the flooding schedule suffers from symmetric
trapping sets.  A layered sweep updates check nodes sequentially,
propagating fresh information within a single iteration.

Fully serial sweeps are slow in Python, so checks are grouped into
*conflict-free layers* (no two checks in a layer share a variable) via
greedy coloring of the check conflict graph; checks within a layer
update simultaneously with no semantic difference from a serial sweep
over them.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np
import scipy.sparse as sp

from repro._matrix import mod2_right_mul
from repro.decoders.base import DecodeResult, Decoder
from repro.decoders.bp import BPBatchResult, DampingSchedule, _concat_results
from repro.decoders.tanner import shared_tanner_edges
from repro.problem import DecodingProblem

__all__ = ["LayeredMinSumBP", "check_conflict_layers"]


def check_conflict_layers(check_matrix) -> list[np.ndarray]:
    """Partition checks into groups that share no variable.

    Greedy graph coloring of the check conflict graph (two checks
    conflict when some column of H touches both).
    """
    h = check_matrix if sp.issparse(check_matrix) else sp.csr_matrix(
        np.asarray(check_matrix)
    )
    gram = (h @ h.T).tocoo()
    graph = nx.Graph()
    graph.add_nodes_from(range(h.shape[0]))
    graph.add_edges_from(
        (int(i), int(j)) for i, j in zip(gram.row, gram.col) if i != j
    )
    coloring = nx.greedy_color(graph, strategy="largest_first")
    n_colors = max(coloring.values()) + 1 if coloring else 0
    layers = [[] for _ in range(n_colors)]
    for check, color in coloring.items():
        layers[color].append(check)
    return [np.asarray(sorted(layer), dtype=np.intp) for layer in layers]


@dataclass
class _Layer:
    edge_idx: np.ndarray      # positions into the check-sorted edge arrays
    edge_var: np.ndarray      # variable of each layer edge
    starts: np.ndarray        # reduceat boundaries within the layer slice
    segment: np.ndarray       # per-edge segment id within the layer
    check_of_segment: np.ndarray


class LayeredMinSumBP(Decoder):
    """Min-sum BP with a layered (serial) schedule.

    Same message rules as :class:`~repro.decoders.bp.MinSumBP`; one
    iteration is a full sweep over all layers.
    """

    def __init__(
        self,
        problem: DecodingProblem,
        *,
        max_iter: int = 100,
        damping: str | float = "adaptive",
        clamp: float = 50.0,
        track_oscillations: bool = False,
        dtype=np.float32,
        batch_size: int = 32,
    ):
        if max_iter < 1:
            raise ValueError("max_iter must be at least 1")
        self.problem = problem
        self.max_iter = int(max_iter)
        self.damping = (
            damping if isinstance(damping, DampingSchedule)
            else DampingSchedule(damping)
        )
        self.clamp = float(clamp)
        self.track_oscillations = bool(track_oscillations)
        self.dtype = dtype
        self.batch_size = int(batch_size)
        self.edges = shared_tanner_edges(problem.check_matrix)
        self._prior_llr = problem.llr_priors().astype(dtype)
        self._layers = self._build_layers()

    def _build_layers(self) -> list[_Layer]:
        edges = self.edges
        groups = check_conflict_layers(self.problem.check_matrix)
        # Map check id -> (slice into check-sorted edges).
        seg_of_check = {int(c): k for k, c in enumerate(edges.check_ids)}
        seg_ends = np.append(edges.check_starts[1:], edges.n_edges)
        layers = []
        for group in groups:
            idx_parts = []
            starts = []
            seg_ids = []
            checks = []
            offset = 0
            for c in group:
                k = seg_of_check.get(int(c))
                if k is None:
                    continue  # check with no edges
                lo, hi = edges.check_starts[k], seg_ends[k]
                idx_parts.append(np.arange(lo, hi))
                starts.append(offset)
                seg_ids.append(np.full(hi - lo, len(checks)))
                checks.append(int(c))
                offset += hi - lo
            if not idx_parts:
                continue
            edge_idx = np.concatenate(idx_parts)
            layers.append(
                _Layer(
                    edge_idx=edge_idx,
                    edge_var=edges.edge_var[edge_idx],
                    starts=np.asarray(starts, dtype=np.intp),
                    segment=np.concatenate(seg_ids),
                    check_of_segment=np.asarray(checks, dtype=np.intp),
                )
            )
        return layers

    @property
    def n_layers(self) -> int:
        """Number of conflict-free layers per sweep."""
        return len(self._layers)

    # -- public API -----------------------------------------------------

    def decode(self, syndrome) -> DecodeResult:
        return self.decode_many(np.atleast_2d(syndrome)).to_results()[0]

    def decode_many(self, syndromes) -> BPBatchResult:
        syndromes = np.atleast_2d(np.asarray(syndromes, dtype=np.uint8))
        chunks = [
            self._decode_chunk(syndromes[i: i + self.batch_size])
            for i in range(0, syndromes.shape[0], self.batch_size)
        ]
        return _concat_results(chunks)

    # -- core -----------------------------------------------------------

    def _decode_chunk(self, syndromes: np.ndarray) -> BPBatchResult:
        edges = self.edges
        batch = syndromes.shape[0]
        n = edges.n_vars

        errors = np.zeros((batch, n), dtype=np.uint8)
        marginals = np.tile(self._prior_llr, (batch, 1))
        iterations = np.full(batch, self.max_iter, dtype=np.int64)
        converged = np.zeros(batch, dtype=bool)
        flips_out = (
            np.zeros((batch, n), dtype=np.int32)
            if self.track_oscillations else None
        )

        index = np.arange(batch)
        synd = syndromes
        post = np.tile(self._prior_llr, (batch, 1))
        c2v = np.zeros((batch, edges.n_edges), dtype=self.dtype)
        prev_hard = np.zeros((batch, n), dtype=np.uint8)
        flips = (
            np.zeros((batch, n), dtype=np.int32)
            if self.track_oscillations else None
        )

        for it in range(1, self.max_iter + 1):
            alpha = self.damping.alpha(it)
            for layer in self._layers:
                self._layer_update(post, c2v, synd, layer, alpha)
            hard = (post <= 0).astype(np.uint8)
            if flips is not None and it > 1:
                flips += hard ^ prev_hard
            prev_hard = hard

            syn_hat = mod2_right_mul(hard, self.problem.check_matrix)
            done = ~np.any(syn_hat ^ synd, axis=1)
            if done.any():
                done_idx = index[done]
                errors[done_idx] = hard[done]
                marginals[done_idx] = post[done]
                iterations[done_idx] = it
                converged[done_idx] = True
                if flips is not None:
                    flips_out[done_idx] = flips[done]
                keep = ~done
                if not keep.any():
                    return BPBatchResult(
                        errors, converged, iterations, marginals, flips_out
                    )
                index = index[keep]
                synd = synd[keep]
                post = post[keep]
                c2v = c2v[keep]
                prev_hard = prev_hard[keep]
                if flips is not None:
                    flips = flips[keep]
                hard = hard[keep]

        errors[index] = hard
        marginals[index] = post
        if flips is not None:
            flips_out[index] = flips
        return BPBatchResult(errors, converged, iterations, marginals, flips_out)

    def _layer_update(self, post, c2v, synd, layer: _Layer, alpha) -> None:
        idx = layer.edge_idx
        seg = layer.segment
        old = c2v[:, idx]
        v2c = post[:, layer.edge_var] - old
        np.clip(v2c, -self.clamp, self.clamp, out=v2c)

        neg = v2c < 0
        magnitude = np.abs(v2c)
        parity = np.bitwise_xor.reduceat(neg, layer.starts, axis=1)
        min1 = np.minimum.reduceat(magnitude, layer.starts, axis=1)
        min1_e = min1[:, seg]
        is_min = magnitude == min1_e
        masked = np.where(is_min, np.inf, magnitude)
        min2 = np.minimum.reduceat(masked, layer.starts, axis=1)
        n_min = np.add.reduceat(is_min, layer.starts, axis=1)
        use_second = is_min & (n_min[:, seg] == 1)
        others_min = np.where(use_second, min2[:, seg], min1_e)
        others_min = np.minimum(others_min, self.clamp)
        sign = 1.0 - 2.0 * (parity[:, seg] ^ neg)
        sign_syn = 1.0 - 2.0 * synd[:, layer.check_of_segment[seg]]
        new = (alpha * others_min * sign * sign_syn).astype(self.dtype)

        c2v[:, idx] = new
        post[:, layer.edge_var] += new - old

"""Memory-augmented min-sum BP (Mem-BP / DMem-BP).

The paper's related work (Sec. I) discusses Relay-BP [Müller et al.,
arXiv:2506.01779], which chains *memory* BP decoders [Chen et al., IEEE
TQE 2025].  Mem-BP replaces the channel prior in the variable-node
update with a blend of the channel LLR and the previous iteration's
posterior:

.. math::

    \\Gamma_j^{(t)} = \\gamma_j\\,\\Gamma_j^{(t-1)}
        + (1-\\gamma_j)\\,\\lambda_j
        + \\sum_{i \\in N(j)} \\mu_{i \\to j}^{(t)}

A uniform memory strength ``γ`` damps oscillations; *disordered*
per-bit strengths (DMem-BP) additionally break the symmetry of
degenerate trapping sets, which is why Relay-BP chains several
differently-disordered legs.

This module provides the single-leg decoder; the chained ensemble lives
in :mod:`repro.decoders.relay`.  Both reuse the vectorised message
kernels of :class:`~repro.decoders.bp.MinSumBP` via the
``_iteration_prior`` hook, so every schedule/batching feature (and the
oscillation tracking BP-SF needs) is inherited.
"""

from __future__ import annotations

import numpy as np

from repro.decoders.bp import MinSumBP
from repro.problem import DecodingProblem

__all__ = ["MemoryMinSumBP", "disordered_gammas"]


def disordered_gammas(
    n: int,
    low: float,
    high: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-bit memory strengths drawn uniformly from ``[low, high)``.

    Negative strengths are allowed (they *anti*-damp a bit, which is
    exactly the symmetry-breaking ingredient of DMem-BP); values must
    stay below 1 or the memory term would diverge.
    """
    if not low < high:
        raise ValueError("low must be smaller than high")
    if high >= 1.0:
        raise ValueError("memory strengths must be < 1")
    return rng.uniform(low, high, size=n)


class MemoryMinSumBP(MinSumBP):
    """Min-sum BP with a per-bit memory term (Mem-BP / DMem-BP).

    Parameters
    ----------
    problem:
        The decoding problem.
    gamma:
        Memory strength: a scalar (uniform Mem-BP) or an ``(n,)`` array
        of per-bit strengths (disordered DMem-BP).  ``gamma = 0``
        recovers plain min-sum BP.  Strengths must be ``< 1``; negative
        values are permitted.
    kwargs:
        Forwarded to :class:`~repro.decoders.bp.MinSumBP` (``max_iter``,
        ``damping``, ``clamp``, ``track_oscillations``, ...).
    """

    def __init__(self, problem: DecodingProblem, *, gamma=0.9, **kwargs):
        super().__init__(problem, **kwargs)
        gamma = np.asarray(gamma, dtype=self.dtype)
        if gamma.ndim == 0:
            gamma = np.full(self.edges.n_vars, float(gamma), dtype=self.dtype)
        if gamma.shape != (self.edges.n_vars,):
            raise ValueError(
                f"gamma shape {gamma.shape} does not match "
                f"{self.edges.n_vars} variables"
            )
        if np.any(gamma >= 1.0):
            raise ValueError("memory strengths must be < 1")
        self.gamma = gamma

    @classmethod
    def disordered(
        cls,
        problem: DecodingProblem,
        *,
        low: float = -0.24,
        high: float = 0.66,
        rng: np.random.Generator | None = None,
        **kwargs,
    ) -> "MemoryMinSumBP":
        """A DMem-BP leg with per-bit strengths from ``[low, high)``.

        Without an explicit ``rng`` the strengths are drawn from a
        fixed-seed generator: two default-constructed instances are
        identical (the repo's seed discipline bans OS-entropy draws —
        lint rule REP001).  Pass a shard-derived generator to vary the
        disorder across ensemble legs.
        """
        rng = np.random.default_rng(0) if rng is None else rng
        gamma = disordered_gammas(problem.n_mechanisms, low, high, rng)
        return cls(problem, gamma=gamma, **kwargs)

    def _iteration_prior(self, prior, marg_prev, iteration: int) -> np.ndarray:
        # First iteration has no posterior yet (marg_prev == prior).
        if iteration == 1:
            return prior
        blended = (1.0 - self.gamma) * prior + self.gamma * marg_prev
        # The memory term can otherwise run away on high-|gamma| bits.
        return np.clip(blended, -self.clamp, self.clamp).astype(
            self.dtype, copy=False
        )

"""Relay-BP: chained memory-BP legs (related-work baseline).

Müller et al. (arXiv:2506.01779), discussed in the paper's Sec. I,
improve BP by *relaying*: a first uniform-memory leg runs, and every
shot it fails to converge is handed to a chain of DMem-BP legs whose
disordered per-bit memory strengths differ leg to leg.  Each leg starts
from the **posteriors of the previous leg** (that is the relay), so
information accumulates along the chain.  Optionally the chain keeps
running after the first success to collect several distinct solutions
and return the lightest one.

The paper positions BP-SF against Relay-BP on latency grounds: relay
legs are inherently *sequential* (each consumes its predecessor's
posteriors) while BP-SF trials are independent and embarrassingly
parallel.  The ``iterations`` / ``parallel_iterations`` accounting
below reflects exactly that: for Relay-BP the two are equal, because
there is nothing to parallelise across legs.
"""

from __future__ import annotations

import time

import numpy as np

from repro.decoders.base import (
    _STAGE_DTYPE,
    BatchDecodeResult,
    DecodeResult,
    Decoder,
    distribute_batch_time,
)
from repro.decoders.membp import MemoryMinSumBP, disordered_gammas
from repro.problem import DecodingProblem

__all__ = ["RelayBP"]


class RelayBP(Decoder):
    """Chained Mem-BP ensemble (Relay-BP).

    Parameters
    ----------
    problem:
        The decoding problem.
    gamma0:
        Uniform memory strength of the first leg.
    gamma_dist:
        ``(low, high)`` interval for the disordered per-bit strengths
        of the relay legs.
    num_legs:
        Maximum number of relay legs after the first.
    leg_iters:
        Iteration budget per leg.
    stop_after:
        Number of *distinct converged solutions* to collect before
        stopping; with the default of 1 the first success returns
        immediately, larger values trade latency for picking the
        lightest solution (the ensemble-decoding mode).
    seed:
        Seed for the per-leg disorder draws (legs differ by draw).
    kwargs:
        Forwarded to the underlying BP legs (``damping``, ``clamp``,
        ``dtype``, ``batch_size``).
    """

    def __init__(
        self,
        problem: DecodingProblem,
        *,
        gamma0: float = 0.65,
        gamma_dist: tuple[float, float] = (-0.24, 0.66),
        num_legs: int = 3,
        leg_iters: int = 60,
        stop_after: int = 1,
        seed: int | None = None,
        **kwargs,
    ):
        if num_legs < 0:
            raise ValueError("num_legs must be non-negative")
        if stop_after < 1:
            raise ValueError("stop_after must be at least 1")
        self.problem = problem
        self.gamma0 = float(gamma0)
        self.gamma_dist = (float(gamma_dist[0]), float(gamma_dist[1]))
        self.num_legs = int(num_legs)
        self.leg_iters = int(leg_iters)
        self.stop_after = int(stop_after)
        self.name = f"RelayBP{leg_iters}x{1 + num_legs}"
        rng = np.random.default_rng(seed)
        self._first_leg = MemoryMinSumBP(
            problem, gamma=self.gamma0, max_iter=self.leg_iters, **kwargs
        )
        low, high = self.gamma_dist
        self._relay_legs = [
            MemoryMinSumBP(
                problem,
                gamma=disordered_gammas(problem.n_mechanisms, low, high, rng),
                max_iter=self.leg_iters,
                **kwargs,
            )
            for _ in range(self.num_legs)
        ]
        self._weights = problem.llr_priors()

    # -- public API -----------------------------------------------------

    def decode(self, syndrome) -> DecodeResult:
        return self.decode_many(np.atleast_2d(syndrome)).to_results()[0]

    def decode_many(self, syndromes) -> BatchDecodeResult:
        """Decode a batch, relaying posteriors across legs per shot."""
        start = time.perf_counter()
        syndromes = np.atleast_2d(np.asarray(syndromes, dtype=np.uint8))
        batch = syndromes.shape[0]

        first = self._first_leg.decode_many(syndromes)
        solutions: list[list[np.ndarray]] = [[] for _ in range(batch)]
        iterations = first.iterations.astype(np.int64).copy()
        first_leg_iters = first.iterations.astype(np.int64).copy()
        errors = first.errors.copy()
        marginals = first.marginals.copy()
        for i in np.nonzero(first.converged)[0]:
            solutions[int(i)].append(first.errors[i].copy())

        # A shot stays active while it still wants more solutions and
        # legs remain; posteriors carry over as the next leg's priors.
        active = np.asarray(
            [len(solutions[i]) < self.stop_after for i in range(batch)]
        )
        priors = first.marginals.copy()
        for leg in self._relay_legs:
            if not active.any():
                break
            idx = np.nonzero(active)[0]
            prior_act = self._relay_prior(priors[idx])
            res = leg.decode_many(syndromes[idx], prior_llr=prior_act)
            iterations[idx] += res.iterations
            priors[idx] = res.marginals
            marginals[idx] = res.marginals
            for row, i in enumerate(idx):
                if res.converged[row]:
                    solutions[int(i)].append(res.errors[row].copy())
                    if len(solutions[int(i)]) >= self.stop_after:
                        active[i] = False

        # Per-shot winner: the lightest distinct solution found.
        converged = np.zeros(batch, dtype=bool)
        stage = np.full(batch, "failed", dtype=_STAGE_DTYPE)
        trials_attempted = np.zeros(batch, dtype=np.int64)
        for i in range(batch):
            found = solutions[i]
            if not found:
                continue
            best = min(
                found, key=lambda e: float(self._weights[e == 1].sum())
            )
            errors[i] = best
            converged[i] = True
            stage[i] = "initial" if first.converged[i] else "post"
            trials_attempted[i] = len(found)

        elapsed = time.perf_counter() - start
        result = BatchDecodeResult(
            errors=errors,
            converged=converged,
            iterations=iterations,
            marginals=marginals,
            flip_counts=first.flip_counts,
            # Relay legs are sequential by construction; parallel and
            # serial latency coincide (the paper's latency argument).
            parallel_iterations=iterations.copy(),
            initial_iterations=first_leg_iters,
            stage=stage,
            trials_attempted=trials_attempted,
        )
        distribute_batch_time(result, elapsed)
        return result

    # -- internals -------------------------------------------------------

    def _relay_prior(self, posteriors: np.ndarray) -> np.ndarray:
        """Clip relayed posteriors so no leg starts fully saturated."""
        clamp = self._first_leg.clamp
        return np.clip(posteriors, -0.9 * clamp, 0.9 * clamp)

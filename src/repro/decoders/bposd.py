"""BP-OSD: belief propagation with OSD fallback (the paper's baseline).

Runs min-sum BP; when it converges the result is returned directly,
otherwise the BP posterior LLRs seed an ordered-statistics search
(`BP1000-OSD10` in the paper's labels means 1000 BP iterations + OSD-CS
of order 10).
"""

from __future__ import annotations

import time

import numpy as np

from repro.decoders.base import DecodeResult, Decoder
from repro.decoders.bp import MinSumBP
from repro.decoders.layered import LayeredMinSumBP
from repro.decoders.osd import OrderedStatisticsDecoder
from repro.problem import DecodingProblem

__all__ = ["BPOSDDecoder"]


class BPOSDDecoder(Decoder):
    """Min-sum BP followed by OSD post-processing on failure."""

    def __init__(
        self,
        problem: DecodingProblem,
        *,
        max_iter: int = 1000,
        osd_order: int = 10,
        osd_method: str = "cs",
        damping: str | float = "adaptive",
        layered: bool = False,
        bp_kwargs: dict | None = None,
    ):
        self.problem = problem
        bp_cls = LayeredMinSumBP if layered else MinSumBP
        self.bp = bp_cls(problem, max_iter=max_iter, damping=damping,
                         **(bp_kwargs or {}))
        self.osd = OrderedStatisticsDecoder(
            problem, order=osd_order, method=osd_method
        )
        self.name = (
            f"BP{max_iter}-OSD{osd_order if osd_method != '0' else 0}"
        )

    def decode(self, syndrome) -> DecodeResult:
        start = time.perf_counter()
        bp_result = self.bp.decode(syndrome)
        if bp_result.converged:
            bp_result.time_seconds = time.perf_counter() - start
            return bp_result
        error = self.osd.decode_from_marginals(syndrome, bp_result.marginals)
        elapsed = time.perf_counter() - start
        if error is None:
            return DecodeResult(
                error=bp_result.error,
                converged=False,
                iterations=int(bp_result.iterations),
                stage="failed",
                marginals=bp_result.marginals,
                time_seconds=elapsed,
            )
        return DecodeResult(
            error=error,
            converged=True,
            iterations=int(bp_result.iterations),
            stage="post",
            marginals=bp_result.marginals,
            time_seconds=elapsed,
        )

    def decode_batch(self, syndromes) -> list[DecodeResult]:
        """Batch decode: BP vectorised, OSD per failing shot."""
        syndromes = np.atleast_2d(np.asarray(syndromes, dtype=np.uint8))
        batch = self.bp.decode_many(syndromes)
        out: list[DecodeResult] = []
        for i in range(len(batch)):
            if batch.converged[i]:
                out.append(
                    DecodeResult(
                        error=batch.errors[i],
                        converged=True,
                        iterations=int(batch.iterations[i]),
                        stage="initial",
                        marginals=batch.marginals[i],
                    )
                )
                continue
            start = time.perf_counter()
            error = self.osd.decode_from_marginals(
                syndromes[i], batch.marginals[i]
            )
            elapsed = time.perf_counter() - start
            if error is None:
                out.append(
                    DecodeResult(
                        error=batch.errors[i],
                        converged=False,
                        iterations=int(batch.iterations[i]),
                        stage="failed",
                        time_seconds=elapsed,
                    )
                )
            else:
                out.append(
                    DecodeResult(
                        error=error,
                        converged=True,
                        iterations=int(batch.iterations[i]),
                        stage="post",
                        time_seconds=elapsed,
                    )
                )
        return out

"""BP-OSD: belief propagation with OSD fallback (the paper's baseline).

Runs min-sum BP; when it converges the result is returned directly,
otherwise the BP posterior LLRs seed an ordered-statistics search
(`BP1000-OSD10` in the paper's labels means 1000 BP iterations + OSD-CS
of order 10).
"""

from __future__ import annotations

import time

import numpy as np

from repro.decoders.base import (
    _STAGE_DTYPE,
    BatchDecodeResult,
    DecodeResult,
    Decoder,
)
from repro.decoders.bp import MinSumBP
from repro.decoders.layered import LayeredMinSumBP
from repro.decoders.osd import OrderedStatisticsDecoder
from repro.problem import DecodingProblem

__all__ = ["BPOSDDecoder"]


class BPOSDDecoder(Decoder):
    """Min-sum BP followed by OSD post-processing on failure."""

    def __init__(
        self,
        problem: DecodingProblem,
        *,
        max_iter: int = 1000,
        osd_order: int = 10,
        osd_method: str = "cs",
        damping: str | float = "adaptive",
        layered: bool = False,
        bp_kwargs: dict | None = None,
    ):
        self.problem = problem
        bp_cls = LayeredMinSumBP if layered else MinSumBP
        self.bp = bp_cls(problem, max_iter=max_iter, damping=damping,
                         **(bp_kwargs or {}))
        self.osd = OrderedStatisticsDecoder(
            problem, order=osd_order, method=osd_method
        )
        self.name = (
            f"BP{max_iter}-OSD{osd_order if osd_method != '0' else 0}"
        )

    def decode(self, syndrome) -> DecodeResult:
        start = time.perf_counter()
        result = self.decode_many(np.atleast_2d(syndrome)).to_results()[0]
        result.time_seconds = time.perf_counter() - start
        return result

    def decode_many(self, syndromes) -> BatchDecodeResult:
        """Batch decode: BP vectorised, OSD per failing shot.

        The OSD stage is an inherently sequential Gaussian-elimination
        search, so it runs per failing shot; everything else stays in
        array columns (``stage`` marks which shots it rescued and
        ``time_seconds`` carries its per-shot cost).
        """
        syndromes = np.atleast_2d(np.asarray(syndromes, dtype=np.uint8))
        bp = self.bp.decode_many(syndromes)
        errors = bp.errors.copy()
        converged = bp.converged.copy()
        stage = np.where(converged, "initial", "failed").astype(_STAGE_DTYPE)
        time_seconds = np.zeros(len(bp), dtype=np.float64)
        for i in np.nonzero(~bp.converged)[0]:
            start = time.perf_counter()
            error = self.osd.decode_from_marginals(
                syndromes[i], bp.marginals[i]
            )
            time_seconds[i] = time.perf_counter() - start
            if error is not None:
                errors[i] = error
                converged[i] = True
                stage[i] = "post"
        return BatchDecodeResult(
            errors=errors,
            converged=converged,
            iterations=bp.iterations,
            marginals=bp.marginals,
            flip_counts=bp.flip_counts,
            stage=stage,
            time_seconds=time_seconds,
        )

"""Decoders: min-sum BP, layered BP, OSD, BP-OSD, BP-SF and baselines.

``BPSFDecoder`` is the paper's contribution; ``BPOSDDecoder`` is the
baseline it is compared against.  ``ParallelBPSFDecoder`` and the GPU
latency models reproduce the execution variants of Sec. VI.

The related-work decoders the paper positions itself against are also
implemented so the comparisons of Sec. I can be run head-to-head:
``MemoryMinSumBP`` / ``RelayBP`` (Mem-BP and its chained ensemble),
``GDGDecoder`` (guided decimation guessing) and the
prior/posterior-modification family (``PosteriorFlipDecoder``,
``PerturbedEnsembleBP``).
"""

from repro.decoders.base import BatchDecodeResult, DecodeResult, Decoder
from repro.decoders.bp import BPBatchResult, DampingSchedule, MinSumBP
from repro.decoders.bposd import BPOSDDecoder
from repro.decoders.bpsf import BPSFDecoder
from repro.decoders.ensemble import PerturbedEnsembleBP, PosteriorFlipDecoder
from repro.decoders.gdg import GDGDecoder
from repro.decoders.gpu_model import (
    GPUEstimatedBPOSD,
    GPUEstimatedBPSF,
    GPULatencyModel,
)
from repro.decoders.kernels import (
    KERNEL_BACKENDS,
    BPKernel,
    resolve_backend,
    use_backend,
)
from repro.decoders.layered import LayeredMinSumBP, check_conflict_layers
from repro.decoders.membp import MemoryMinSumBP, disordered_gammas
from repro.decoders.osd import OrderedStatisticsDecoder
from repro.decoders.parallel import ParallelBPSFDecoder
from repro.decoders.registry import (
    DECODER_REGISTRY,
    get_decoder,
    make_decoder_factory,
)
from repro.decoders.relay import RelayBP
from repro.decoders.selectors import SELECTORS, get_selector
from repro.decoders.sum_product import SumProductBP
from repro.decoders.tanner import TannerEdges, shared_tanner_edges
from repro.decoders.trial_vectors import (
    exhaustive_trials,
    sampled_trials,
    top_oscillating_bits,
    weighted_trials,
)

__all__ = [
    "DecodeResult",
    "Decoder",
    "BatchDecodeResult",
    "BPBatchResult",
    "DampingSchedule",
    "DECODER_REGISTRY",
    "get_decoder",
    "make_decoder_factory",
    "BPKernel",
    "KERNEL_BACKENDS",
    "resolve_backend",
    "use_backend",
    "MinSumBP",
    "BPOSDDecoder",
    "BPSFDecoder",
    "GDGDecoder",
    "GPUEstimatedBPOSD",
    "GPUEstimatedBPSF",
    "GPULatencyModel",
    "LayeredMinSumBP",
    "MemoryMinSumBP",
    "PerturbedEnsembleBP",
    "PosteriorFlipDecoder",
    "RelayBP",
    "check_conflict_layers",
    "disordered_gammas",
    "OrderedStatisticsDecoder",
    "ParallelBPSFDecoder",
    "SELECTORS",
    "get_selector",
    "SumProductBP",
    "TannerEdges",
    "shared_tanner_edges",
    "exhaustive_trials",
    "sampled_trials",
    "top_oscillating_bits",
    "weighted_trials",
]

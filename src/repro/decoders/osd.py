"""Ordered statistics decoding (OSD) post-processing.

This is the baseline the paper compares against (BP-OSD, Roffe et al.
2020).  After a failed BP run, columns of ``H`` are ranked by the BP
posterior probability of being in error; ordered Gaussian elimination
turns the most suspicious independent columns into an information set,
and candidate solutions are scored over the remaining ("T") columns:

* **OSD-0** — all T bits zero;
* **OSD-CS (order λ)** — additionally every weight-1 T pattern and all
  weight-2 patterns within the first λ T columns (the "combination
  sweep" of the paper's OSD-CS reference);
* **OSD-E (order λ)** — exhaustive search over the first λ T columns
  (small λ only; used to validate CS in tests).

Candidates are scored by soft weight ``Σ log((1-p_i)/p_i)`` over their
support (``weighting="hamming"`` scores plain Hamming weight).
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.gf2 import ColumnOrderedRREF
from repro.problem import DecodingProblem

__all__ = ["OrderedStatisticsDecoder"]


class OrderedStatisticsDecoder:
    """OSD-0 / OSD-CS / OSD-E over a decoding problem's check matrix."""

    def __init__(
        self,
        problem: DecodingProblem,
        *,
        order: int = 10,
        method: str = "cs",
        weighting: str = "soft",
    ):
        if method not in ("0", "cs", "e"):
            raise ValueError(f"method must be '0', 'cs' or 'e', got {method!r}")
        if method == "e" and order > 14:
            raise ValueError("exhaustive OSD limited to order <= 14")
        if order < 0:
            raise ValueError("order must be non-negative")
        if weighting not in ("soft", "hamming"):
            raise ValueError(f"unknown weighting {weighting!r}")
        self.problem = problem
        self.order = int(order)
        self.method = method
        self.weighting = weighting
        self._h_dense = problem.check_matrix.toarray().astype(np.uint8)
        if weighting == "soft":
            self._weights = problem.llr_priors()
        else:
            self._weights = np.ones(problem.n_mechanisms)

    def decode_from_marginals(self, syndrome, marginal_llrs) -> np.ndarray | None:
        """Decode using BP posterior LLRs as the reliability order.

        Small (or negative) marginal LLR means "probably in error", so
        columns are eliminated in ascending-LLR order.  Returns ``None``
        when the syndrome is outside the column space of ``H``.
        """
        syndrome = np.asarray(syndrome, dtype=np.uint8).reshape(-1)
        marginal_llrs = np.asarray(marginal_llrs, dtype=np.float64).reshape(-1)
        order_cols = np.argsort(marginal_llrs, kind="stable")
        rref = ColumnOrderedRREF(self._h_dense, order_cols)
        pivot_rhs, consistent = rref.reduce_vector(syndrome)
        if not consistent:
            return None

        base = rref.solve_with_flips(pivot_rhs)
        if self.method == "0" or self.order == 0:
            return base

        pivot_set = set(int(c) for c in rref.pivot_cols)
        t_cols = np.asarray(
            [c for c in order_cols if int(c) not in pivot_set], dtype=np.intp
        )
        if t_cols.size == 0:
            return base

        if self.method == "cs":
            flips = self._combination_sweep(rref, pivot_rhs, t_cols)
        else:
            flips = self._exhaustive(rref, pivot_rhs, t_cols)
        if flips is None:
            return base
        candidate = rref.solve_with_flips(pivot_rhs, flips)
        if self._soft_weight(candidate) < self._soft_weight(base):
            return candidate
        return base

    # -- candidate scoring ------------------------------------------------

    def _soft_weight(self, error: np.ndarray) -> float:
        return float(self._weights[np.nonzero(error)[0]].sum())

    def _combination_sweep(self, rref, pivot_rhs, t_cols):
        """Best flip set among weight-1 (all) and weight-2 (first λ)."""
        w_pivot = self._weights[rref.pivot_cols]
        w_t = self._weights[t_cols]
        reduced = rref.reduced_columns(t_cols).astype(np.float64)
        base = pivot_rhs.astype(np.float64)
        base_cost = float(w_pivot @ base)

        # Weight-1 candidates, vectorised:
        # cost_j = w_p . (base xor R_j) + w_t[j]
        #        = base_cost + (w_p * (1 - 2 base)) . R_j + w_t[j]
        signed = w_pivot * (1.0 - 2.0 * base)
        costs1 = base_cost + signed @ reduced + w_t
        best_idx = int(np.argmin(costs1))
        best_cost = float(costs1[best_idx])
        best_flips: tuple[int, ...] = (int(t_cols[best_idx]),)

        sweep = min(self.order, t_cols.size)
        for a, b in itertools.combinations(range(sweep), 2):
            pattern = (base.astype(np.uint8)
                       ^ reduced[:, a].astype(np.uint8)
                       ^ reduced[:, b].astype(np.uint8))
            cost = float(w_pivot @ pattern) + w_t[a] + w_t[b]
            if cost < best_cost:
                best_cost = cost
                best_flips = (int(t_cols[a]), int(t_cols[b]))
        return best_flips

    def _exhaustive(self, rref, pivot_rhs, t_cols):
        """Best flip set among all subsets of the first λ T columns."""
        sweep = min(self.order, t_cols.size)
        w_pivot = self._weights[rref.pivot_cols]
        reduced = rref.reduced_columns(t_cols[:sweep]).astype(np.uint8)
        base = pivot_rhs.astype(np.uint8)
        best_cost = None
        best_flips: tuple[int, ...] | None = None
        for r in range(1, sweep + 1):
            for combo in itertools.combinations(range(sweep), r):
                pattern = base.copy()
                for c in combo:
                    pattern ^= reduced[:, c]
                cost = float(w_pivot @ pattern) + float(
                    self._weights[t_cols[list(combo)]].sum()
                )
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best_flips = tuple(int(t_cols[c]) for c in combo)
        if best_cost is None:
            return None
        return best_flips

"""JIT-compiled min-sum kernel (``numba`` backend) with iteration fusion.

The paper's thesis is that *fully parallel* BP wins once the decoder
actually exploits hardware parallelism; this backend is the compiled
realisation of that claim on CPU.  Strategy (vs.
:class:`~repro.decoders.kernels.fused.FusedKernel`):

* **CSR-flattened Tanner graph.**  Check and variable adjacency become
  four contiguous ``int64`` index arrays at construction (``chk_ptr`` /
  ``edge_var`` on the check side, ``var_ptr`` / ``var_edge`` on the
  variable side), so every update is a pointer walk — no ``reduceat``
  per-segment dispatch, no gather/scatter temporaries.
* **Fused per-row iteration.**  Check update (streaming two-smallest
  min-sum whose duplicate-counting ``min2`` equals ``min1`` on a
  degenerate minimum — the reference's ``n_min`` rule, value for
  value), variable update, hard decision and the edge-domain parity
  check run back to back over one row inside a single
  ``@njit(parallel=True, cache=True)`` kernel with ``prange`` over
  shots (or over ``stop_groups`` groups).
* **Multi-iteration fusion.**  :meth:`fused_run` executes up to K
  iterations per JIT call, checking convergence *every* iteration
  in-kernel and freezing a row (or its whole group — first success
  wins) at the exact iteration it converges, so results are identical
  to the one-iteration-per-call protocol loop while Python leaves the
  hot path entirely.  K is adaptive: the decode loop keeps K=1 until
  the first convergence activity, then grows it (see
  ``MinSumBP._decode_chunk_fused``).
* **Preallocated workspaces + compaction.**  Capacity-sized buffers are
  sliced per chunk and forward-compacted as rows retire, so straggler
  re-batching and BP-SF trial pooling work verbatim; pickling drops the
  workspace exactly like the fused backend.

Determinism: all arithmetic stays in the working dtype and segment
sums accumulate scalar left-to-right in var-sorted order, but numpy's
``add.reduceat`` (the reference) uses SIMD partial sums with no fixed
associativity, so the two differ by ulps from iteration one and the
backend declares ``deterministic_sums = False``.  Those ulps amplify
roughly a decade per ~5 iterations along oscillating min-sum
trajectories: in float64 (or bounded float32 runs) integer/sign
outputs remain bit-identical to the reference, while a float32 shot
that oscillates for tens of iterations may retire onto a different —
equally valid, syndrome-satisfying — solution.  LLR columns are
always tolerance-compared by the parity suite.  The backend is
self-deterministic: repeated decodes of the same batch are bit-equal.

Import is always safe: without ``numba`` the module falls back to a
no-op ``njit`` (``prange = range``) so the *algorithm* stays testable
in pure Python, while :mod:`repro.decoders.kernels` only registers the
backend loader — ``KERNEL_BACKENDS["numba"]`` appears solely when the
real dependency imports (`NUMBA_AVAILABLE`).
"""

from __future__ import annotations

import numpy as np

from repro.decoders.kernels.base import BPKernel

__all__ = ["NUMBA_AVAILABLE", "NUMBA_IMPORT_ERROR", "NumbaKernel"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba
    from numba import njit, prange

    NUMBA_AVAILABLE = True
    NUMBA_IMPORT_ERROR = None
    _RUNTIME = f"numba {numba.__version__} (numpy {np.__version__})"
except ImportError as _exc:  # pure-Python fallback: same code, no JIT
    NUMBA_AVAILABLE = False
    NUMBA_IMPORT_ERROR = str(_exc)
    _RUNTIME = f"pure-python fallback (numpy {np.__version__})"
    prange = range

    def njit(*args, **kwargs):
        """Identity decorator standing in for ``numba.njit``."""
        if args and callable(args[0]) and not kwargs:
            return args[0]

        def wrap(func):
            return func

        return wrap


# -- row-level building blocks ------------------------------------------
#
# Each helper operates on one shot's 1-D slices so the prange drivers
# below parallelise over rows/groups with zero shared writes.  All float
# scalars (alpha, clamp) arrive as working-dtype values; nothing here
# promotes to float64.


@njit(cache=True)
def _row_check_update(v2c_r, c2v_r, synd_r, chk_ptr, edge_var, alpha, clamp):
    """Min-sum check update for one row (paper Eq. 6).

    Streaming two-smallest recurrence: ``min2`` counts duplicates (it
    equals ``min1`` when the minimum is degenerate), so emitting it at
    every per-check-minimum edge reproduces the reference's
    ``n_min == 1`` masked-``min2`` rule value for value.  A degree-1
    check has no "other" input; the reference's masked minimum is
    ``inf`` there, clipped to ``clamp`` — so ``clamp`` is the seed.
    """
    for c in range(chk_ptr.shape[0] - 1):
        lo = chk_ptr[c]
        hi = chk_ptr[c + 1]
        x = v2c_r[lo]
        par = synd_r[c] != 0
        if x < 0:
            par = not par
            a = -x
        else:
            a = x
        min1 = a
        min2 = clamp
        have2 = False
        for e in range(lo + 1, hi):
            x = v2c_r[e]
            if x < 0:
                par = not par
                a = -x
            else:
                a = x
            if a < min1:
                min2 = min1
                min1 = a
                have2 = True
            elif (not have2) or a < min2:
                min2 = a
                have2 = True
        m1 = min1 if min1 < clamp else clamp
        m1 = m1 * alpha
        m2 = min2 if min2 < clamp else clamp
        m2 = m2 * alpha
        for e in range(lo, hi):
            x = v2c_r[e]
            if x < 0:
                neg = True
                a = -x
            else:
                neg = False
                a = x
            mag = m2 if a == min1 else m1
            # sign = (-1)^{parity-excluding-e ^ s_c}; `par` already
            # folds s_c and *all* sign bits, so exclusion is `!= neg`.
            if par != neg:
                c2v_r[e] = -mag
            else:
                c2v_r[e] = mag


@njit(cache=True)
def _row_variable_update(
    c2v_r, prior_r, marg_r, v2c_r, var_ptr, var_edge, var_ids, edge_var, clamp
):
    """Marginals (Eq. 7) and next v2c (Eq. 5) for one row.

    Sums accumulate left to right in var-sorted edge order and are
    added to the prior as one final op — the reference's ``prior +
    reduceat(c2v_v)`` order, so scalar results match it exactly.
    """
    for v in range(marg_r.shape[0]):
        marg_r[v] = prior_r[v]
    for vi in range(var_ptr.shape[0] - 1):
        lo = var_ptr[vi]
        hi = var_ptr[vi + 1]
        s = c2v_r[var_edge[lo]]
        for j in range(lo + 1, hi):
            s = s + c2v_r[var_edge[j]]
        v = var_ids[vi]
        marg_r[v] = marg_r[v] + s
    for e in range(v2c_r.shape[0]):
        t = marg_r[edge_var[e]] - c2v_r[e]
        if t > clamp:
            t = clamp
        elif t < -clamp:
            t = -clamp
        v2c_r[e] = t


@njit(cache=True)
def _row_hard(marg_r, hard_r):
    for v in range(marg_r.shape[0]):
        hard_r[v] = 1 if marg_r[v] <= 0 else 0


@njit(cache=True)
def _row_syndrome_ok(hard_r, synd_r, chk_ptr, edge_var):
    """Edge-domain parity check ``H @ hard == s (mod 2)`` for one row."""
    for c in range(chk_ptr.shape[0] - 1):
        p = 0
        for e in range(chk_ptr[c], chk_ptr[c + 1]):
            p ^= hard_r[edge_var[e]]
        if p != synd_r[c]:
            return False
    return True


# -- per-step prange drivers (generic BPKernel protocol) ----------------


@njit(cache=True, parallel=True)
def _check_update_batch(v2c, c2v, synd, chk_ptr, edge_var, alpha, clamp):
    for r in prange(v2c.shape[0]):
        _row_check_update(
            v2c[r], c2v[r], synd[r], chk_ptr, edge_var, alpha, clamp
        )


@njit(cache=True, parallel=True)
def _variable_update_batch(
    c2v, prior, marg, v2c, var_ptr, var_edge, var_ids, edge_var, clamp
):
    shared_prior = prior.shape[0] == 1
    for r in prange(c2v.shape[0]):
        pr = prior[0] if shared_prior else prior[r]
        _row_variable_update(
            c2v[r], pr, marg[r], v2c[r], var_ptr, var_edge, var_ids,
            edge_var, clamp,
        )


@njit(cache=True, parallel=True)
def _hard_batch(marg, hard):
    for r in prange(marg.shape[0]):
        _row_hard(marg[r], hard[r])


@njit(cache=True, parallel=True)
def _converged_batch(hard, synd, feasible, done, chk_ptr, edge_var):
    for r in prange(hard.shape[0]):
        done[r] = feasible[r] and _row_syndrome_ok(
            hard[r], synd[r], chk_ptr, edge_var
        )


# -- multi-iteration fusion driver --------------------------------------


@njit(cache=True, parallel=True)
def _fused_iterations(
    v2c, c2v, prior, marg, hard, prev_hard, flips, track_flips,
    synd, feasible, chk_ptr, edge_var, var_ptr, var_edge, var_ids,
    alphas, clamp, it0, group_ptr, conv, frozen, stop_rel,
):
    """Run up to ``len(alphas)`` iterations per ``stop_groups`` group.

    Convergence is checked in-kernel after *every* iteration; the
    moment any row of a group converges the whole group freezes at that
    iteration (first-success-wins), reproducing the generic decode
    loop's retirement semantics exactly.  Ungrouped decoding passes
    singleton groups.  Frozen rows report ``stop_rel`` iterations
    relative to ``it0``; surviving rows ran the full span.
    """
    n_vars = marg.shape[1]
    n_iter = alphas.shape[0]
    shared_prior = prior.shape[0] == 1
    for g in prange(group_ptr.shape[0] - 1):
        lo = group_ptr[g]
        hi = group_ptr[g + 1]
        stopped = False
        ran = 0
        for k in range(n_iter):
            alpha = alphas[k]
            any_done = False
            for r in range(lo, hi):
                pr = prior[0] if shared_prior else prior[r]
                _row_check_update(
                    v2c[r], c2v[r], synd[r], chk_ptr, edge_var, alpha, clamp
                )
                _row_variable_update(
                    c2v[r], pr, marg[r], v2c[r], var_ptr, var_edge,
                    var_ids, edge_var, clamp,
                )
                _row_hard(marg[r], hard[r])
                if track_flips and it0 + k > 0:
                    for v in range(n_vars):
                        flips[r, v] += hard[r, v] ^ prev_hard[r, v]
                for v in range(n_vars):
                    prev_hard[r, v] = hard[r, v]
                if feasible[r] and _row_syndrome_ok(
                    hard[r], synd[r], chk_ptr, edge_var
                ):
                    conv[r] = True
                    any_done = True
            ran = k + 1
            if any_done:
                stopped = True
                break
        for r in range(lo, hi):
            stop_rel[r] = ran
            frozen[r] = stopped


class _Workspace:
    """Preallocated per-chunk buffers (capacity rows, sliced to batch)."""

    def __init__(self, cap, edges, n_checks_live, dtype):
        e, n = edges.n_edges, edges.n_vars
        c = n_checks_live
        self.v2c = np.empty((cap, e), dtype)
        self.c2v = np.empty((cap, e), dtype)
        self.sign_syn = np.empty((cap, e), dtype)
        self.synd = np.empty((cap, c), np.uint8)
        self.feasible = np.ones(cap, bool)
        self.marg = np.empty((cap, n), dtype)
        # hard[0] doubles as the fused path's current hard decision and
        # hard[1] as its previous-iteration copy (oscillation counting).
        self.hard = [
            np.empty((cap, n), np.uint8), np.empty((cap, n), np.uint8)
        ]
        self.flips = None  # lazy; fused oscillation tracking only
        self.done = np.empty(cap, bool)
        self.conv = np.empty(cap, bool)
        self.frozen = np.empty(cap, bool)
        self.stop_rel = np.empty(cap, np.int64)
        self.iota = np.arange(cap + 1, dtype=np.int64)


_EMPTY_FLIPS = np.zeros((0, 0), dtype=np.int32)


class NumbaKernel(BPKernel):
    """CSR-flattened, thread-parallel, iteration-fusing min-sum kernel."""

    name = "numba"
    deterministic_sums = False
    supports_iteration_fusion = True
    runtime_version = _RUNTIME

    def __init__(self, edges, check_matrix, *, clamp, dtype):
        super().__init__(edges, check_matrix, clamp=clamp, dtype=dtype)
        # CSR index arrays (int64: numba-friendly, platform independent).
        if edges.check_ids.size:
            self._chk_ptr = np.ascontiguousarray(np.concatenate(
                [edges.check_starts, [edges.n_edges]]
            ), dtype=np.int64)
        else:  # degenerate edge-free matrix: zero checks, zero segments
            self._chk_ptr = np.zeros(1, dtype=np.int64)
        if edges.var_ids.size:
            self._var_ptr = np.ascontiguousarray(np.concatenate(
                [edges.var_starts, [edges.n_edges]]
            ), dtype=np.int64)
        else:
            self._var_ptr = np.zeros(1, dtype=np.int64)
        self._edge_var = np.ascontiguousarray(edges.edge_var, dtype=np.int64)
        self._var_edge = np.ascontiguousarray(
            edges.to_var_order, dtype=np.int64
        )
        self._var_ids = np.ascontiguousarray(edges.var_ids, dtype=np.int64)
        self._clamp_t = self.dtype.type(self.clamp)
        self._ws = None
        self._cap = 0
        self._m = 0          # live rows of the current chunk
        self._flip = 0       # hard-decision ping-pong toggle
        self._track = False  # fused path: oscillation counters on?

    # -- pickling: workspace is transient scratch, never ship it --------

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_ws"] = None
        state["_cap"] = 0
        state["_m"] = 0
        state["_flip"] = 0
        state["_track"] = False
        return state

    # -- chunk lifecycle ------------------------------------------------

    def _ensure(self, batch):
        if self._ws is None or batch > self._cap:
            self._cap = batch
            self._ws = _Workspace(
                batch, self.edges, self.edges.check_ids.shape[0], self.dtype
            )
        return self._ws

    def _begin(self, syndromes, prior):
        """Shared chunk setup: syndrome context + initial messages."""
        edges = self.edges
        batch = syndromes.shape[0]
        ws = self._ensure(batch)
        self._m = batch
        self._flip = 0
        syndromes.take(edges.check_ids, axis=1, out=ws.synd[:batch])
        if edges.all_checks_nonempty:
            ws.feasible[:batch] = True
        else:
            empty_bits = syndromes[:, edges.empty_check_ids]
            np.logical_not(empty_bits.any(axis=1), out=ws.feasible[:batch])
        v2c = ws.v2c[:batch]
        if prior.shape[0] == batch:
            prior.take(edges.edge_var, axis=1, out=v2c)
        else:
            v2c[...] = prior[:, edges.edge_var]
        return ws, batch, v2c

    def start(self, syndromes, prior):
        ws, batch, v2c = self._begin(syndromes, prior)
        # (-1)^{s_c} per edge — only the generic protocol loop (Mem-BP /
        # sum-product subclass hooks) reads it; the fused path skips it.
        ws.sign_syn[:batch] = 1.0
        ws.sign_syn[:batch][
            syndromes[:, self.edges.edge_check] != 0
        ] = -1.0
        return v2c

    @property
    def sign_syn(self):
        return self._ws.sign_syn[: self._m]

    # -- per-iteration steps (generic protocol) -------------------------

    def check_update(self, v2c, sign_syn, alpha):
        m = v2c.shape[0]
        ws = self._ws
        _check_update_batch(
            np.ascontiguousarray(v2c), ws.c2v[:m], ws.synd[:m],
            self._chk_ptr, self._edge_var,
            self.dtype.type(alpha), self._clamp_t,
        )
        return ws.c2v[:m]

    def variable_update(self, c2v, prior):
        m = c2v.shape[0]
        ws = self._ws
        _variable_update_batch(
            np.ascontiguousarray(c2v, dtype=self.dtype),
            np.ascontiguousarray(prior, dtype=self.dtype),
            ws.marg[:m], ws.v2c[:m],
            self._var_ptr, self._var_edge, self._var_ids, self._edge_var,
            self._clamp_t,
        )
        return ws.marg[:m], ws.v2c[:m]

    def hard_decision(self, marg):
        m = marg.shape[0]
        self._flip ^= 1
        hard = self._ws.hard[self._flip][:m]
        _hard_batch(np.ascontiguousarray(marg), hard)
        return hard

    def converged(self, hard):
        m = hard.shape[0]
        ws = self._ws
        _converged_batch(
            np.ascontiguousarray(hard), ws.synd[:m], ws.feasible[:m],
            ws.done[:m], self._chk_ptr, self._edge_var,
        )
        return ws.done[:m]

    # -- retirement -----------------------------------------------------

    def compact(self, v2c, keep):
        m = self._m
        ws = self._ws
        kept = int(np.count_nonzero(keep))
        ws.v2c[:kept] = v2c[keep]
        ws.sign_syn[:kept] = ws.sign_syn[:m][keep]
        ws.synd[:kept] = ws.synd[:m][keep]
        ws.feasible[:kept] = ws.feasible[:m][keep]
        self._m = kept
        return ws.v2c[:kept]

    # -- multi-iteration fusion API -------------------------------------

    def fused_start(self, syndromes, prior, track_flips):
        """Begin a fused-path chunk (no v2c handed back to Python)."""
        ws, batch, _ = self._begin(syndromes, prior)
        self._track = bool(track_flips)
        ws.marg[:batch] = prior
        ws.hard[1][:batch] = 0  # prev_hard; unread before iteration 2
        if self._track:
            if ws.flips is None:
                ws.flips = np.zeros(
                    (self._cap, self.edges.n_vars), dtype=np.int32
                )
            else:
                ws.flips[:batch] = 0

    def fused_run(self, alphas, it0, prior, groups):
        """Run up to ``len(alphas)`` fused iterations over live rows.

        Returns ``(conv, frozen, stop_rel)`` views: per-row convergence,
        per-row retirement (a frozen row's group saw a convergence at
        relative iteration ``stop_rel``), both valid until the next
        kernel call.
        """
        m = self._m
        ws = self._ws
        if groups is None:
            group_ptr = ws.iota[: m + 1]
        else:
            bounds = np.nonzero(np.diff(groups) != 0)[0] + 1
            group_ptr = np.concatenate(
                ([0], bounds, [m])
            ).astype(np.int64)
        conv = ws.conv[:m]
        conv[:] = False
        flips = ws.flips[:m] if self._track else _EMPTY_FLIPS
        _fused_iterations(
            ws.v2c[:m], ws.c2v[:m],
            np.ascontiguousarray(prior, dtype=self.dtype),
            ws.marg[:m], ws.hard[0][:m], ws.hard[1][:m],
            flips, self._track,
            ws.synd[:m], ws.feasible[:m],
            self._chk_ptr, self._edge_var,
            self._var_ptr, self._var_edge, self._var_ids,
            np.ascontiguousarray(alphas, dtype=self.dtype),
            self._clamp_t, np.int64(it0), group_ptr,
            conv, ws.frozen[:m], ws.stop_rel[:m],
        )
        return conv, ws.frozen[:m], ws.stop_rel[:m]

    @property
    def fused_marg(self):
        return self._ws.marg[: self._m]

    @property
    def fused_hard(self):
        return self._ws.hard[0][: self._m]

    @property
    def fused_flips(self):
        return self._ws.flips[: self._m] if self._track else None

    def fused_compact(self, keep):
        """Drop retired rows from every fused-path state buffer."""
        m = self._m
        ws = self._ws
        kept = int(np.count_nonzero(keep))
        for buf in (ws.v2c, ws.synd, ws.marg, ws.hard[0], ws.hard[1]):
            buf[:kept] = buf[:m][keep]
        ws.feasible[:kept] = ws.feasible[:m][keep]
        if self._track:
            ws.flips[:kept] = ws.flips[:m][keep]
        self._m = kept

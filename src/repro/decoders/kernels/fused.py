"""Fused CPU kernel: zero-allocation inner loop + edge-domain parity.

Strategy (vs. :class:`~repro.decoders.kernels.reference.ReferenceKernel`):

* **One per-chunk workspace.**  Every temporary of the min-sum check
  update, the variable update and the parity check is preallocated once
  (and reused across iterations and chunks) with ``out=`` ufunc
  arguments, replacing the ~10 fresh ``(batch, n_edges)`` arrays the
  reference allocates per iteration.
* **Uniform-degree strided reductions.**  qLDPC check matrices have a
  uniform check degree ``d``, so the check-sorted edge axis reshapes to
  a contiguous ``(batch, checks, d)`` view and each segment reduction
  becomes ``d - 1`` strided elementwise ops on column slices — an order
  of magnitude cheaper than ``ufunc.reduceat``'s per-segment dispatch.
  ``min``/``xor`` are exact under any evaluation order, so this is
  bit-identical; the min-sum magnitudes use a streaming two-smallest
  recurrence whose duplicate-counting ``min2`` equals ``min1`` whenever
  the minimum is degenerate — selecting it at *every* per-check-minimum
  edge reproduces the reference's ``n_min``/masked-``min2`` logic value
  for value.  Order-*sensitive* float sums (the variable update) always
  go through ``reduceat`` itself.  Mixed-degree graphs (circuit-level
  DEMs) fall back to ``reduceat`` over the same workspace.
* **Per-check scaling + sign-bit application.**  ``alpha * min(m,
  clamp)`` is computed on the two per-check magnitudes before edge
  expansion (checks ≪ edges), and the combined message sign
  ``(-1)^{parity ⊕ neg ⊕ s_c}`` is applied by XORing the IEEE sign bit
  through a uint view — multiplying a float by exactly ``±1.0`` is a
  pure sign flip, so this matches the reference's float64
  ``sign * sign_syn`` detour bit for bit.
* **Edge-domain parity check.**  The per-iteration syndrome
  verification drops the sparse int32 matmul (``mod2_right_mul``) for
  a uint8 xor of ``hard[:, edge_var]`` over check segments.  Checks
  with no edges are handled by a per-chunk feasibility mask (a row
  whose syndrome is 1 on an empty check can never converge — exactly
  what the matmul reports).

``tests/decoders/test_kernel_parity.py`` asserts equality with the
reference on every output column, across dtypes, damping schedules,
subclasses and ``stop_groups``.

The variable-side sums use the :meth:`TannerEdges.scatter_var_sums`
fast path when every variable has an edge (the common case): the
per-variable sum array *is* the full-width array, no zeros allocation
or fancy assignment.
"""

from __future__ import annotations

import numpy as np

from repro.decoders.kernels.base import BPKernel

__all__ = ["FusedKernel"]

# uint view type used to flip IEEE sign bits in-dtype.
_SIGN_VIEWS = {
    np.dtype(np.float32): (np.uint32, np.uint32(1 << 31)),
    np.dtype(np.float64): (np.uint64, np.uint64(1 << 63)),
}


class _Workspace:
    """Preallocated per-chunk buffers (capacity rows, sliced to batch)."""

    def __init__(self, cap, edges, dtype):
        e, n = edges.n_edges, edges.n_vars
        c = edges.check_ids.shape[0]
        v = edges.var_ids.shape[0]
        f = dtype
        uniform = edges.uniform_check_degree is not None
        # Edge-domain scratch (check-sorted unless noted).
        self.v2c = np.empty((cap, e), f)
        self.c2v = np.empty((cap, e), f)
        self.sign_syn = np.empty((cap, e), f)
        self.magnitude = np.empty((cap, e), f)      # also reused as take dest
        self.c2v_v = np.empty((cap, e), f)          # var-sorted messages
        self.syn_neg = np.empty((cap, e), bool)     # sign_syn < 0, per chunk
        self.neg = np.empty((cap, e), bool)
        self.is_min = np.empty((cap, e), bool)
        self.bxor = np.empty((cap, e), bool)
        self.hard_e = np.empty((cap, e), np.uint8)
        if dtype in _SIGN_VIEWS:
            self.signbits = np.empty((cap, e), _SIGN_VIEWS[dtype][0])
        else:
            self.signbits = None
            self.signbuf = np.empty((cap, e), f)
        # Check-domain scratch (non-empty checks).
        self.parity = np.empty((cap, c), bool)
        self.min1 = np.empty((cap, c), f)
        self.min2 = np.empty((cap, c), f)
        self.tmp_c = np.empty((cap, c), f)
        self.par_u8 = np.empty((cap, c), np.uint8)
        self.synd_e = np.empty((cap, c), np.uint8)
        self.neq = np.empty((cap, c), bool)
        # The reduceat fallback additionally needs masked magnitudes,
        # minimum multiplicities and per-edge gathers of them.
        self.masked = None if uniform else np.empty((cap, e), f)
        self.others = None if uniform else np.empty((cap, e), f)
        self.use2 = None if uniform else np.empty((cap, e), bool)
        self.n_min = None if uniform else np.empty((cap, c), np.int64)
        self.nmin_e = None if uniform else np.empty((cap, e), np.int64)
        # Variable-domain scratch.
        self.sums = np.empty((cap, v), f)
        self.marg = np.empty((cap, n), f)
        # Isolated columns stay zero forever; zero once here, never again.
        self.scatter = (
            None if edges.all_vars_active else np.zeros((cap, n), f)
        )
        # Hard-decision ping-pong (the loop keeps `prev_hard` bound to
        # the buffer the previous iteration wrote).
        self.hard = [np.empty((cap, n), np.uint8), np.empty((cap, n), np.uint8)]
        self.done = np.empty(cap, bool)
        self.feasible = (
            None if edges.all_checks_nonempty else np.empty(cap, bool)
        )


class FusedKernel(BPKernel):
    """Workspace-reusing min-sum kernel with edge-domain parity checks."""

    name = "fused"
    # Float sums deliberately stay on add.reduceat, matching the
    # reference's reduction order bit for bit (contract REP102).
    deterministic_sums = True

    def __init__(self, edges, check_matrix, *, clamp, dtype):
        super().__init__(edges, check_matrix, clamp=clamp, dtype=dtype)
        self._d_chk = edges.uniform_check_degree
        self._ws = None
        self._cap = 0
        self._m = 0          # live rows of the current chunk
        self._flip = 0       # hard-decision ping-pong toggle

    # -- pickling: workspace is transient scratch, never ship it --------

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_ws"] = None
        state["_cap"] = 0
        state["_m"] = 0
        state["_flip"] = 0
        return state

    # -- chunk lifecycle ------------------------------------------------

    def _ensure(self, batch):
        if self._ws is None or batch > self._cap:
            self._cap = batch
            self._ws = _Workspace(batch, self.edges, self.dtype)
        return self._ws

    def start(self, syndromes, prior):
        edges = self.edges
        batch = syndromes.shape[0]
        ws = self._ensure(batch)
        self._m = batch
        self._flip = 0

        # (-1)^{s_c} per edge, in-dtype (values are exactly +-1.0),
        # plus its bool form for the fused sign application.
        syndromes.take(edges.edge_check, axis=1, out=ws.hard_e[:batch])
        np.multiply(ws.hard_e[:batch], -2.0, out=ws.sign_syn[:batch])
        np.add(ws.sign_syn[:batch], 1.0, out=ws.sign_syn[:batch])
        np.not_equal(ws.hard_e[:batch], 0, out=ws.syn_neg[:batch])

        # Syndrome restricted to non-empty checks (the comparison
        # target of the edge-domain parity check), plus feasibility of
        # rows whose syndrome touches an empty check.
        syndromes.take(edges.check_ids, axis=1, out=ws.synd_e[:batch])
        if ws.feasible is not None:
            empty_bits = syndromes[:, edges.empty_check_ids]
            np.logical_not(empty_bits.any(axis=1), out=ws.feasible[:batch])

        v2c = ws.v2c[:batch]
        if prior.shape[0] == batch:
            prior.take(edges.edge_var, axis=1, out=v2c)
        else:
            v2c[...] = prior[:, edges.edge_var]
        return v2c

    @property
    def sign_syn(self):
        return self._ws.sign_syn[: self._m]

    # -- check-node update ----------------------------------------------

    def check_update(self, v2c, sign_syn, alpha):
        """Min-sum check update.

        The combined sign is applied from the kernel's own syndrome
        mask, so the ``sign_syn`` argument is assumed to be
        :attr:`sign_syn` (which is what the decode loop passes).
        """
        m = v2c.shape[0]
        ws = self._ws
        neg = ws.neg[:m]
        magnitude = ws.magnitude[:m]
        c2v = ws.c2v[:m]
        bxor = ws.bxor[:m]

        np.less(v2c, 0, out=neg)
        np.abs(v2c, out=magnitude)
        # The helpers fill c2v with the scaled magnitudes and bxor with
        # the per-edge parity-exclusion bit (parity ^ neg).
        if self._d_chk is not None:
            self._magnitudes_uniform(m, alpha, c2v)
        else:
            self._magnitudes_reduceat(m, alpha, c2v)

        # Combined sign (-1)^{parity ^ neg ^ s_c}: parity of the other
        # inputs' signs times the syndrome sign.  The factors are
        # exactly +-1.0, so flipping the IEEE sign bit through a uint
        # view matches the reference's float64 multiply detour bit for
        # bit.
        np.bitwise_xor(bxor, ws.syn_neg[:m], out=bxor)
        if ws.signbits is not None:
            view_type, bit = _SIGN_VIEWS[self.dtype]
            signbits = ws.signbits[:m]
            np.multiply(bxor, bit, out=signbits)
            cv = c2v.view(view_type)
            np.bitwise_xor(cv, signbits, out=cv)
        else:
            np.copyto(ws.signbuf[:m], 1.0)
            np.copyto(ws.signbuf[:m], -1.0, where=bxor)
            np.multiply(c2v, ws.signbuf[:m], out=c2v)
        return c2v

    def _magnitudes_uniform(self, m, alpha, c2v):
        """Check magnitudes via strided two-smallest recurrence.

        ``min2`` counts duplicates (it equals ``min1`` when the minimum
        is degenerate), so selecting it at *every* minimum edge equals
        the reference's unique-minimum (``n_min == 1``) rule: with a
        degenerate minimum the reference keeps ``min1`` — the very same
        value.  ``min``/``max`` are exact in any order, so the strided
        evaluation is bit-identical to ``reduceat``'s.
        """
        ws = self._ws
        d = self._d_chk
        c = self.edges.check_ids.shape[0]
        mag3 = ws.magnitude[:m].reshape(m, c, d)
        neg3 = ws.neg[:m].reshape(m, c, d)
        min1 = ws.min1[:m]
        min2 = ws.min2[:m]
        tmp = ws.tmp_c[:m]
        parity = ws.parity[:m]

        np.copyto(min1, mag3[:, :, 0])
        min2.fill(np.inf)
        np.copyto(parity, neg3[:, :, 0])
        for k in range(1, d):
            x = mag3[:, :, k]
            np.maximum(min1, x, out=tmp)
            np.minimum(min2, tmp, out=min2)
            np.minimum(min1, x, out=min1)
            np.bitwise_xor(parity, neg3[:, :, k], out=parity)

        is_min3 = ws.is_min[:m].reshape(m, c, d)
        np.equal(mag3, min1[:, :, None], out=is_min3)
        np.bitwise_xor(parity[:, :, None], neg3, out=ws.bxor[:m].reshape(m, c, d))
        # Scale per check (checks << edges), then expand to edges.
        np.minimum(min1, self.clamp, out=min1)
        np.multiply(min1, alpha, out=min1)
        np.minimum(min2, self.clamp, out=min2)
        np.multiply(min2, alpha, out=min2)
        c2v3 = c2v.reshape(m, c, d)
        np.copyto(c2v3, min1[:, :, None])
        np.copyto(c2v3, min2[:, :, None], where=is_min3)

    def _magnitudes_reduceat(self, m, alpha, c2v):
        """Mixed-degree fallback: reduceat over the shared workspace."""
        edges = self.edges
        starts = edges.check_starts
        seg = edges.edge_segment
        ws = self._ws
        magnitude = ws.magnitude[:m]
        is_min = ws.is_min[:m]
        masked = ws.masked[:m]
        others = ws.others[:m]
        use2 = ws.use2[:m]

        np.bitwise_xor.reduceat(ws.neg[:m], starts, axis=1, out=ws.parity[:m])
        np.minimum.reduceat(magnitude, starts, axis=1, out=ws.min1[:m])
        ws.min1[:m].take(seg, axis=1, out=others)          # min1 per edge
        np.equal(magnitude, others, out=is_min)
        np.copyto(masked, magnitude)
        np.copyto(masked, np.inf, where=is_min)
        np.minimum.reduceat(masked, starts, axis=1, out=ws.min2[:m])
        np.add.reduceat(is_min, starts, axis=1, out=ws.n_min[:m])
        ws.n_min[:m].take(seg, axis=1, out=ws.nmin_e[:m])
        np.equal(ws.nmin_e[:m], 1, out=use2)
        np.logical_and(is_min, use2, out=use2)
        ws.min2[:m].take(seg, axis=1, out=magnitude)       # min2 per edge
        np.copyto(others, magnitude, where=use2)
        np.minimum(others, self.clamp, out=others)
        np.multiply(others, alpha, out=c2v)
        ws.parity[:m].take(seg, axis=1, out=ws.bxor[:m])
        np.bitwise_xor(ws.bxor[:m], ws.neg[:m], out=ws.bxor[:m])

    # -- variable-node update -------------------------------------------

    def variable_update(self, c2v, prior):
        edges = self.edges
        m = c2v.shape[0]
        ws = self._ws
        c2v_v = ws.c2v_v[:m]
        sums = ws.sums[:m]
        marg = ws.marg[:m]
        marg_e = ws.magnitude[:m]
        v2c = ws.v2c[:m]

        c2v.take(edges.to_var_order, axis=1, out=c2v_v)
        # Float addition is order-sensitive, and reduceat's in-segment
        # accumulation order is an implementation detail — so the sums
        # always go through reduceat itself to stay bit-identical to
        # the reference (only order-free reductions use the strided
        # fast path).
        np.add.reduceat(c2v_v, edges.var_starts, axis=1, out=sums)
        if ws.scatter is None:
            np.add(prior, sums, out=marg)
        else:
            scatter = ws.scatter[:m]
            scatter[:, edges.var_ids] = sums
            np.add(prior, scatter, out=marg)
        marg.take(edges.edge_var_sorted, axis=1, out=marg_e)
        np.subtract(marg_e, c2v_v, out=c2v_v)
        c2v_v.take(edges.from_var_order, axis=1, out=v2c)
        np.clip(v2c, -self.clamp, self.clamp, out=v2c)
        return marg, v2c

    # -- hard decision + parity check -----------------------------------

    def hard_decision(self, marg):
        m = marg.shape[0]
        self._flip ^= 1
        hard = self._ws.hard[self._flip][:m]
        np.less_equal(marg, 0, out=hard)
        return hard

    def converged(self, hard):
        edges = self.edges
        m = hard.shape[0]
        ws = self._ws
        hard_e = ws.hard_e[:m]
        par = ws.par_u8[:m]
        hard.take(edges.edge_var, axis=1, out=hard_e)
        if self._d_chk is not None:
            d = self._d_chk
            h3 = hard_e.reshape(m, edges.check_ids.shape[0], d)
            np.copyto(par, h3[:, :, 0])
            for k in range(1, d):
                np.bitwise_xor(par, h3[:, :, k], out=par)
        else:
            np.bitwise_xor.reduceat(
                hard_e, edges.check_starts, axis=1, out=par
            )
        np.not_equal(par, ws.synd_e[:m], out=ws.neq[:m])
        done = ws.done[:m]
        np.logical_or.reduce(ws.neq[:m], axis=1, out=done)
        np.logical_not(done, out=done)
        if ws.feasible is not None:
            np.logical_and(done, ws.feasible[:m], out=done)
        return done

    # -- retirement -----------------------------------------------------

    def compact(self, v2c, keep):
        m = self._m
        ws = self._ws
        kept = int(np.count_nonzero(keep))
        # Forward copy into the head of each live-state buffer (the
        # boolean gather makes one shrinking temp per buffer; all other
        # scratch is rewritten from scratch each iteration).
        ws.v2c[:kept] = v2c[keep]
        ws.sign_syn[:kept] = ws.sign_syn[:m][keep]
        ws.syn_neg[:kept] = ws.syn_neg[:m][keep]
        ws.synd_e[:kept] = ws.synd_e[:m][keep]
        if ws.feasible is not None:
            ws.feasible[:kept] = ws.feasible[:m][keep]
        self._m = kept
        return ws.v2c[:kept]

"""Kernel-backend seam for the flooding BP inner loop.

:class:`~repro.decoders.bp.MinSumBP` runs one generic decode loop
(scheduling, damping, convergence retirement, ``stop_groups``
first-success semantics, straggler re-batching) and delegates every
array-heavy inner-loop step to a :class:`BPKernel`:

* the min-sum check-node update,
* the variable-node marginal/message update,
* the hard decision and the per-iteration syndrome parity check,
* per-chunk state (syndrome sign context, message buffers) and its
  compaction as shots retire.

Two CPU backends ship today — :class:`~repro.decoders.kernels.reference
.ReferenceKernel` (the historical allocating implementation) and
:class:`~repro.decoders.kernels.fused.FusedKernel` (preallocated
workspace + edge-domain parity check) — and they are **bit-identical**
by construction; ``tests/decoders/test_kernel_parity.py`` enforces it.
A GPU/SIMD kernel (the ROADMAP open item) plugs in by implementing the
same protocol.

Backend selection
-----------------
``resolve_backend(None | "auto")`` consults, in order: an active
:func:`use_backend` override (how the registry threads an explicit
choice into decoders it builds), the ``REPRO_BP_BACKEND`` environment
variable, and finally the default (``fused``).  Explicit names
(``"reference"``/``"fused"``/``"numba"``) always win.

Optional backends
-----------------
Backends with third-party dependencies (the ``numba`` JIT backend)
register a *loader* via :func:`register_optional_backend` instead of a
class: ``KERNEL_BACKENDS`` gains the entry only once the dependency
actually imports, which :func:`resolve_backend`, :func:`available_backends`
and :func:`backend_availability` all trigger lazily.  A failed import is
remembered and surfaces in ``resolve_backend``'s error ("known but not
installed"), never as a silent omission.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from contextlib import contextmanager
from typing import Any, Callable, Iterator

import numpy as np

from repro.decoders.tanner import TannerEdges

__all__ = [
    "BPKernel",
    "KERNEL_BACKENDS",
    "OPTIONAL_BACKENDS",
    "available_backends",
    "backend_availability",
    "default_backend",
    "make_kernel",
    "register_optional_backend",
    "resolve_backend",
    "use_backend",
]

#: Environment knob read by ``resolve_backend`` (bench config + CLI).
BACKEND_ENV_VAR = "REPRO_BP_BACKEND"

_BACKEND_OVERRIDE: list[str] = []


class BPKernel(ABC):
    """Inner-loop engine contract for one decode chunk.

    A kernel is bound to a decoder instance (one per
    :class:`~repro.decoders.bp.MinSumBP`), is (re)initialised per chunk
    via :meth:`start`, and owns whatever scratch state its strategy
    needs.  The decode loop guarantees the call order per iteration::

        check_update -> variable_update -> hard_decision -> converged

    with :meth:`compact` between iterations whenever rows retire.

    Determinism contract: integer/sign outputs (``hard_decision``,
    ``converged``, the syndrome context) must be *bit-identical* across
    backends.  Backends whose float sums follow the reference's
    reduction order exactly additionally keep :attr:`deterministic_sums`
    ``True`` and are bit-identical on LLR columns too; a backend that
    reorders float reductions (SIMD/GPU/JIT) declares
    ``deterministic_sums = False`` and the parity suite compares its
    LLR outputs with dtype-tiered tolerances instead.
    """

    #: Registry name of the backend ("reference", "fused", ...).
    name: str = ""

    #: Whether order-sensitive float sums reproduce the reference's
    #: reduction order bit for bit (see the determinism contract above).
    deterministic_sums: bool = True

    #: Whether the backend implements the multi-iteration fusion API
    #: (``fused_start``/``fused_run``/``fused_compact`` + the
    #: ``fused_marg``/``fused_hard``/``fused_flips`` views) that lets
    #: :class:`~repro.decoders.bp.MinSumBP` run K iterations per
    #: backend call instead of one protocol round-trip per iteration.
    supports_iteration_fusion: bool = False

    #: Human-readable runtime the backend executes on (shown by
    #: ``python -m repro backends``).
    runtime_version: str = f"numpy {np.__version__}"

    def __init__(
        self,
        edges: TannerEdges,
        check_matrix: Any,
        *,
        clamp: float,
        dtype: Any,
    ) -> None:
        self.edges = edges
        self.check_matrix = check_matrix
        self.clamp = float(clamp)
        self.dtype = np.dtype(dtype)

    # -- chunk lifecycle ------------------------------------------------

    @abstractmethod
    def start(self, syndromes: np.ndarray, prior: np.ndarray) -> np.ndarray:
        """Begin a chunk: set syndrome context, return the initial v2c.

        ``syndromes`` is ``(batch, n_checks)`` uint8; ``prior`` is the
        ``(1, n)`` or ``(batch, n)`` LLR array.  Returns the initial
        variable-to-check messages ``prior[:, edge_var]`` as a
        ``(batch, n_edges)`` array the kernel may own.
        """

    @property
    @abstractmethod
    def sign_syn(self) -> np.ndarray:
        """Per-edge syndrome signs ``(-1)^{s_c}`` for the live rows."""

    # -- per-iteration steps --------------------------------------------

    @abstractmethod
    def check_update(
        self, v2c: np.ndarray, sign_syn: np.ndarray, alpha: float
    ) -> np.ndarray:
        """Normalised min-sum check-node update (paper Eq. 6)."""

    @abstractmethod
    def variable_update(
        self, c2v: np.ndarray, prior: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Marginals (Eq. 7) and next v2c messages (Eq. 5)."""

    @abstractmethod
    def hard_decision(self, marg: np.ndarray) -> np.ndarray:
        """Hard decisions ``marg <= 0`` as uint8 ``(batch, n)``."""

    @abstractmethod
    def converged(self, hard: np.ndarray) -> np.ndarray:
        """Per-row syndrome match ``H @ hard == s (mod 2)`` as bool."""

    # -- retirement -----------------------------------------------------

    @abstractmethod
    def compact(self, v2c: np.ndarray, keep: np.ndarray) -> np.ndarray:
        """Drop retired rows from kernel state; return compacted v2c."""


def default_backend() -> str:
    """The backend used when nothing selects one explicitly."""
    return "fused"


def resolve_backend(backend: str | None = None) -> str:
    """Resolve a backend request to a concrete kernel name.

    ``None``/``"auto"`` defers to an active :func:`use_backend`
    override, then ``REPRO_BP_BACKEND``, then :func:`default_backend`.
    Raises ``ValueError`` for unknown names (including an unknown env
    value) so misconfiguration fails at decoder construction, not
    mid-decode.  Naming a registered optional backend loads it on the
    spot; if its dependency is missing the error says so (with the
    import error) instead of pretending the name is unknown.
    """
    if backend is None:
        backend = "auto"
    if backend == "auto":
        if _BACKEND_OVERRIDE:
            backend = _BACKEND_OVERRIDE[-1]
        else:
            backend = os.environ.get(BACKEND_ENV_VAR, "auto")
        if backend == "auto":
            backend = default_backend()
    if backend not in KERNEL_BACKENDS:
        if backend in OPTIONAL_BACKENDS:
            if not _load_optional(backend):
                raise ValueError(
                    f"unknown BP kernel backend {backend!r}: the "
                    f"optional backend is registered but its dependency "
                    f"is not installed ({_OPTIONAL_ERRORS[backend]})"
                )
        else:
            known = "auto, " + ", ".join(sorted(KERNEL_BACKENDS))
            missing = sorted(
                name for name in OPTIONAL_BACKENDS
                if name not in KERNEL_BACKENDS
            )
            extra = (
                f" (optional, not installed: {', '.join(missing)})"
                if missing else ""
            )
            raise ValueError(
                f"unknown BP kernel backend {backend!r}; one of "
                f"{known}{extra}"
            )
    return backend


@contextmanager
def use_backend(backend: str) -> Iterator[str]:
    """Scope a default backend for decoders built inside the block.

    Used by the decoder registry (and ultimately the CLI / sharded
    engine) to thread an explicit backend choice into factories whose
    signatures predate the knob.  Explicit ``backend=`` arguments on a
    constructor still win over the override.
    """
    resolved = resolve_backend(backend)
    _BACKEND_OVERRIDE.append(resolved)
    try:
        yield resolved
    finally:
        _BACKEND_OVERRIDE.pop()


def make_kernel(
    backend: str | None,
    edges: TannerEdges,
    check_matrix: Any,
    *,
    clamp: float,
    dtype: Any,
) -> BPKernel:
    """Build the kernel for ``backend`` (resolving ``None``/"auto")."""
    name = resolve_backend(backend)
    return KERNEL_BACKENDS[name](edges, check_matrix, clamp=clamp, dtype=dtype)


# Populated at the bottom of the package __init__ to avoid circular
# imports; maps backend name -> kernel class.  Optional backends appear
# here only once their dependency has actually imported.
KERNEL_BACKENDS: dict[str, type[BPKernel]] = {}

# Optional backends: name -> zero-arg loader returning the kernel class
# (raising ImportError when the dependency is missing).  Failed loads
# are remembered in _OPTIONAL_ERRORS so availability can be reported
# without re-importing on every probe.
OPTIONAL_BACKENDS: dict[str, Callable[[], type[BPKernel]]] = {}
_OPTIONAL_ERRORS: dict[str, str] = {}


def register_optional_backend(
    name: str, loader: Callable[[], type[BPKernel]]
) -> None:
    """Register a dependency-gated backend by loader, not class.

    The loader runs at most once per failure mode: on success the class
    lands in ``KERNEL_BACKENDS`` (and the loader is never called
    again); on ``ImportError`` the message is cached and re-raised as a
    friendly ``resolve_backend`` error on every later request.
    """
    OPTIONAL_BACKENDS[name] = loader


def _load_optional(name: str) -> bool:
    """Try to load optional backend ``name``; True when usable."""
    if name in KERNEL_BACKENDS:
        return True
    if name in _OPTIONAL_ERRORS:
        return False
    try:
        KERNEL_BACKENDS[name] = OPTIONAL_BACKENDS[name]()
        return True
    except ImportError as exc:
        _OPTIONAL_ERRORS[name] = str(exc)
        return False


def available_backends() -> tuple[str, ...]:
    """Sorted names of every backend that is actually usable now.

    Probes (and thereby lazily loads) each registered optional backend,
    so "usable" means *imported*, not merely registered.
    """
    for name in OPTIONAL_BACKENDS:
        _load_optional(name)
    return tuple(sorted(KERNEL_BACKENDS))


def backend_availability() -> dict[str, dict[str, Any]]:
    """Availability report for ``python -m repro backends``.

    Maps every registered backend name (built-in and optional) to
    ``{"available", "optional", "default", "runtime", "error"}`` —
    ``error`` carries the cached import error for an optional backend
    whose dependency is missing.
    """
    available_backends()  # force optional probes
    report: dict[str, dict[str, Any]] = {}
    for name in sorted(set(KERNEL_BACKENDS) | set(OPTIONAL_BACKENDS)):
        cls = KERNEL_BACKENDS.get(name)
        report[name] = {
            "available": cls is not None,
            "optional": name in OPTIONAL_BACKENDS,
            "default": name == default_backend(),
            "runtime": getattr(cls, "runtime_version", None),
            "error": _OPTIONAL_ERRORS.get(name),
        }
    return report

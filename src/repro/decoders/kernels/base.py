"""Kernel-backend seam for the flooding BP inner loop.

:class:`~repro.decoders.bp.MinSumBP` runs one generic decode loop
(scheduling, damping, convergence retirement, ``stop_groups``
first-success semantics, straggler re-batching) and delegates every
array-heavy inner-loop step to a :class:`BPKernel`:

* the min-sum check-node update,
* the variable-node marginal/message update,
* the hard decision and the per-iteration syndrome parity check,
* per-chunk state (syndrome sign context, message buffers) and its
  compaction as shots retire.

Two CPU backends ship today — :class:`~repro.decoders.kernels.reference
.ReferenceKernel` (the historical allocating implementation) and
:class:`~repro.decoders.kernels.fused.FusedKernel` (preallocated
workspace + edge-domain parity check) — and they are **bit-identical**
by construction; ``tests/decoders/test_kernel_parity.py`` enforces it.
A GPU/SIMD kernel (the ROADMAP open item) plugs in by implementing the
same protocol.

Backend selection
-----------------
``resolve_backend(None | "auto")`` consults, in order: an active
:func:`use_backend` override (how the registry threads an explicit
choice into decoders it builds), the ``REPRO_BP_BACKEND`` environment
variable, and finally the default (``fused``).  Explicit names
(``"reference"``/``"fused"``) always win.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from contextlib import contextmanager

import numpy as np

from repro.decoders.tanner import TannerEdges

__all__ = [
    "BPKernel",
    "KERNEL_BACKENDS",
    "default_backend",
    "make_kernel",
    "resolve_backend",
    "use_backend",
]

#: Environment knob read by ``resolve_backend`` (bench config + CLI).
BACKEND_ENV_VAR = "REPRO_BP_BACKEND"

_BACKEND_OVERRIDE: list[str] = []


class BPKernel(ABC):
    """Inner-loop engine contract for one decode chunk.

    A kernel is bound to a decoder instance (one per
    :class:`~repro.decoders.bp.MinSumBP`), is (re)initialised per chunk
    via :meth:`start`, and owns whatever scratch state its strategy
    needs.  The decode loop guarantees the call order per iteration::

        check_update -> variable_update -> hard_decision -> converged

    with :meth:`compact` between iterations whenever rows retire.  All
    methods must be *bit-identical* across backends: same floating
    point reduction order, same dtypes at every step.
    """

    #: Registry name of the backend ("reference", "fused", ...).
    name: str = ""

    def __init__(self, edges: TannerEdges, check_matrix, *, clamp, dtype):
        self.edges = edges
        self.check_matrix = check_matrix
        self.clamp = float(clamp)
        self.dtype = np.dtype(dtype)

    # -- chunk lifecycle ------------------------------------------------

    @abstractmethod
    def start(self, syndromes: np.ndarray, prior: np.ndarray) -> np.ndarray:
        """Begin a chunk: set syndrome context, return the initial v2c.

        ``syndromes`` is ``(batch, n_checks)`` uint8; ``prior`` is the
        ``(1, n)`` or ``(batch, n)`` LLR array.  Returns the initial
        variable-to-check messages ``prior[:, edge_var]`` as a
        ``(batch, n_edges)`` array the kernel may own.
        """

    @property
    @abstractmethod
    def sign_syn(self) -> np.ndarray:
        """Per-edge syndrome signs ``(-1)^{s_c}`` for the live rows."""

    # -- per-iteration steps --------------------------------------------

    @abstractmethod
    def check_update(self, v2c, sign_syn, alpha) -> np.ndarray:
        """Normalised min-sum check-node update (paper Eq. 6)."""

    @abstractmethod
    def variable_update(self, c2v, prior) -> tuple[np.ndarray, np.ndarray]:
        """Marginals (Eq. 7) and next v2c messages (Eq. 5)."""

    @abstractmethod
    def hard_decision(self, marg) -> np.ndarray:
        """Hard decisions ``marg <= 0`` as uint8 ``(batch, n)``."""

    @abstractmethod
    def converged(self, hard) -> np.ndarray:
        """Per-row syndrome match ``H @ hard == s (mod 2)`` as bool."""

    # -- retirement -----------------------------------------------------

    @abstractmethod
    def compact(self, v2c, keep) -> np.ndarray:
        """Drop retired rows from kernel state; return compacted v2c."""


def default_backend() -> str:
    """The backend used when nothing selects one explicitly."""
    return "fused"


def resolve_backend(backend: str | None = None) -> str:
    """Resolve a backend request to a concrete kernel name.

    ``None``/``"auto"`` defers to an active :func:`use_backend`
    override, then ``REPRO_BP_BACKEND``, then :func:`default_backend`.
    Raises ``ValueError`` for unknown names (including an unknown env
    value) so misconfiguration fails at decoder construction, not
    mid-decode.
    """
    if backend is None:
        backend = "auto"
    if backend == "auto":
        if _BACKEND_OVERRIDE:
            backend = _BACKEND_OVERRIDE[-1]
        else:
            backend = os.environ.get(BACKEND_ENV_VAR, "auto")
        if backend == "auto":
            backend = default_backend()
    if backend not in KERNEL_BACKENDS:
        raise ValueError(
            f"unknown BP kernel backend {backend!r}; one of "
            f"{'auto, ' + ', '.join(sorted(KERNEL_BACKENDS))}"
        )
    return backend


@contextmanager
def use_backend(backend: str):
    """Scope a default backend for decoders built inside the block.

    Used by the decoder registry (and ultimately the CLI / sharded
    engine) to thread an explicit backend choice into factories whose
    signatures predate the knob.  Explicit ``backend=`` arguments on a
    constructor still win over the override.
    """
    resolved = resolve_backend(backend)
    _BACKEND_OVERRIDE.append(resolved)
    try:
        yield resolved
    finally:
        _BACKEND_OVERRIDE.pop()


def make_kernel(
    backend: str | None,
    edges: TannerEdges,
    check_matrix,
    *,
    clamp: float,
    dtype,
) -> BPKernel:
    """Build the kernel for ``backend`` (resolving ``None``/"auto")."""
    name = resolve_backend(backend)
    return KERNEL_BACKENDS[name](edges, check_matrix, clamp=clamp, dtype=dtype)


# Populated at the bottom of the package __init__ to avoid circular
# imports; maps backend name -> kernel class.
KERNEL_BACKENDS: dict[str, type] = {}

"""Reference CPU kernel: the historical allocating reduceat inner loop.

This is the pre-seam implementation of
:class:`~repro.decoders.bp.MinSumBP` moved behind the
:class:`~repro.decoders.kernels.base.BPKernel` protocol *verbatim*:
every update allocates fresh ``(batch, n_edges)`` temporaries and the
syndrome is verified with the sparse int32 matmul
:func:`repro._matrix.mod2_right_mul`.  It is the semantic ground truth
the fused kernel (and any future GPU kernel) must match bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro._matrix import mod2_right_mul
from repro.decoders.kernels.base import BPKernel

__all__ = ["ReferenceKernel"]


class ReferenceKernel(BPKernel):
    """Allocating reduceat kernel + sparse-matmul parity check."""

    name = "reference"
    # The reference *defines* the reduction order others reproduce.
    deterministic_sums = True

    def __init__(self, edges, check_matrix, *, clamp, dtype):
        super().__init__(edges, check_matrix, clamp=clamp, dtype=dtype)
        self._synd = None
        self._sign_syn = None

    def __getstate__(self):
        # Per-chunk scratch, overwritten by start(); never ship it to
        # worker processes (mirrors FusedKernel's workspace dropping).
        state = self.__dict__.copy()
        state["_synd"] = None
        state["_sign_syn"] = None
        return state

    # -- chunk lifecycle ------------------------------------------------

    def start(self, syndromes, prior):
        edges = self.edges
        batch = syndromes.shape[0]
        self._synd = syndromes
        self._sign_syn = (
            1.0 - 2.0 * syndromes[:, edges.edge_check]
        ).astype(self.dtype)
        return np.broadcast_to(
            prior[:, edges.edge_var], (batch, edges.n_edges)
        ).copy()

    @property
    def sign_syn(self):
        return self._sign_syn

    # -- per-iteration steps --------------------------------------------

    def check_update(self, v2c, sign_syn, alpha):
        edges = self.edges
        starts = edges.check_starts
        seg = edges.edge_segment

        neg = v2c < 0
        magnitude = np.abs(v2c)
        parity = np.bitwise_xor.reduceat(neg, starts, axis=1)
        min1 = np.minimum.reduceat(magnitude, starts, axis=1)
        min1_e = min1[:, seg]
        is_min = magnitude == min1_e
        masked = np.where(is_min, np.inf, magnitude)
        min2 = np.minimum.reduceat(masked, starts, axis=1)
        n_min = np.add.reduceat(is_min, starts, axis=1)
        use_second = is_min & (n_min[:, seg] == 1)
        others_min = np.where(use_second, min2[:, seg], min1_e)
        others_min = np.minimum(others_min, self.clamp)
        sign = 1.0 - 2.0 * (parity[:, seg] ^ neg)
        return (alpha * others_min * sign * sign_syn).astype(self.dtype)

    def variable_update(self, c2v, prior):
        edges = self.edges
        c2v_v = c2v[:, edges.to_var_order]
        sums = np.add.reduceat(c2v_v, edges.var_starts, axis=1)
        marg = prior + edges.scatter_var_sums(sums)
        v2c_v = marg[:, edges.edge_var_sorted] - c2v_v
        v2c = np.empty_like(c2v)
        v2c[:, edges.to_var_order] = v2c_v
        np.clip(v2c, -self.clamp, self.clamp, out=v2c)
        return marg, v2c

    def hard_decision(self, marg):
        return (marg <= 0).astype(np.uint8)

    def converged(self, hard):
        syn_hat = mod2_right_mul(hard, self.check_matrix)
        return ~np.any(syn_hat ^ self._synd, axis=1)

    # -- retirement -----------------------------------------------------

    def compact(self, v2c, keep):
        self._synd = self._synd[keep]
        self._sign_syn = self._sign_syn[keep]
        return v2c[keep]

"""Pluggable BP kernel backends (the ROADMAP's GPU-seam, CPU-first).

``MinSumBP`` (and its Mem-BP / sum-product / BP-SF-inner subclasses)
delegate their inner loop to a :class:`BPKernel`:

* ``"reference"`` — :class:`ReferenceKernel`, the historical allocating
  reduceat implementation with a sparse-matmul parity check;
* ``"fused"`` — :class:`FusedKernel`, one preallocated per-chunk
  workspace reused across iterations plus an edge-domain
  ``bitwise_xor.reduceat`` parity check;
* ``"numba"`` — :class:`~repro.decoders.kernels.numba_kernel
  .NumbaKernel`, JIT-compiled ``prange``-parallel kernels over a
  CSR-flattened Tanner graph with multi-iteration fusion.  *Optional*:
  registered lazily, appears in ``KERNEL_BACKENDS`` only when the
  ``numba`` dependency imports (``python -m repro backends`` reports
  availability either way);
* ``"auto"`` (default) — defer to :func:`use_backend` /
  ``REPRO_BP_BACKEND`` / the built-in default (``fused``).

Integer/sign outputs are bit-identical across backends (enforced by
``tests/decoders/test_kernel_parity.py``); backends that reorder float
reductions declare ``deterministic_sums = False`` and their LLR columns
are tolerance-compared instead.  The knob exists for debugging,
benchmarking (``benchmarks/test_kernel_backends.py``) and as the seam
further GPU/SIMD kernels plug into.
"""

from __future__ import annotations

from repro.decoders.kernels.base import (
    BACKEND_ENV_VAR,
    KERNEL_BACKENDS,
    OPTIONAL_BACKENDS,
    BPKernel,
    available_backends,
    backend_availability,
    default_backend,
    make_kernel,
    register_optional_backend,
    resolve_backend,
    use_backend,
)
from repro.decoders.kernels.fused import FusedKernel
from repro.decoders.kernels.reference import ReferenceKernel

__all__ = [
    "BACKEND_ENV_VAR",
    "BPKernel",
    "FusedKernel",
    "KERNEL_BACKENDS",
    "OPTIONAL_BACKENDS",
    "ReferenceKernel",
    "available_backends",
    "backend_availability",
    "default_backend",
    "make_kernel",
    "register_optional_backend",
    "resolve_backend",
    "use_backend",
]

KERNEL_BACKENDS["reference"] = ReferenceKernel
KERNEL_BACKENDS["fused"] = FusedKernel


def _load_numba_backend() -> type:
    """Loader for the optional numba backend (see base.py registry).

    The module itself always imports (it carries a pure-Python
    fallback so its algorithm stays testable without the JIT); the
    *backend registration* is what stays gated on the real dependency.
    """
    from repro.decoders.kernels import numba_kernel

    if not numba_kernel.NUMBA_AVAILABLE:
        raise ImportError(numba_kernel.NUMBA_IMPORT_ERROR)
    return numba_kernel.NumbaKernel


register_optional_backend("numba", _load_numba_backend)

"""Pluggable BP kernel backends (the ROADMAP's GPU-seam, CPU-first).

``MinSumBP`` (and its Mem-BP / sum-product / BP-SF-inner subclasses)
delegate their inner loop to a :class:`BPKernel`:

* ``"reference"`` — :class:`ReferenceKernel`, the historical allocating
  reduceat implementation with a sparse-matmul parity check;
* ``"fused"`` — :class:`FusedKernel`, one preallocated per-chunk
  workspace reused across iterations plus an edge-domain
  ``bitwise_xor.reduceat`` parity check;
* ``"auto"`` (default) — defer to :func:`use_backend` /
  ``REPRO_BP_BACKEND`` / the built-in default (``fused``).

Backends are bit-identical (enforced by
``tests/decoders/test_kernel_parity.py``); the knob exists for
debugging, benchmarking (``benchmarks/test_kernel_backends.py``) and as
the seam a GPU/SIMD kernel plugs into.
"""

from __future__ import annotations

from repro.decoders.kernels.base import (
    BACKEND_ENV_VAR,
    KERNEL_BACKENDS,
    BPKernel,
    default_backend,
    make_kernel,
    resolve_backend,
    use_backend,
)
from repro.decoders.kernels.fused import FusedKernel
from repro.decoders.kernels.reference import ReferenceKernel

__all__ = [
    "BACKEND_ENV_VAR",
    "BPKernel",
    "FusedKernel",
    "KERNEL_BACKENDS",
    "ReferenceKernel",
    "default_backend",
    "make_kernel",
    "resolve_backend",
    "use_backend",
]

KERNEL_BACKENDS["reference"] = ReferenceKernel
KERNEL_BACKENDS["fused"] = FusedKernel

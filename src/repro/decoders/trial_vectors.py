"""Candidate-bit selection and trial-vector generation for BP-SF.

Candidate bits are the most frequently *oscillating* bits of the failed
BP run (paper Sec. III-B: oscillating bits correlate strongly with true
error locations).  Trial vectors are subsets of the candidate set; each
trial flips its bits in the syndrome domain.

Two generation strategies are used in the paper:

* exhaustive enumeration of all subsets up to weight ``w_max``
  (code-capacity model, where ``w_max = 1`` suffices), and
* sampling ``n_s`` random subsets per weight in ``{1..w_max}``
  (circuit-level model, where the candidate set is larger).
"""

from __future__ import annotations

import itertools

import numpy as np

__all__ = [
    "exhaustive_trials",
    "sampled_trials",
    "top_oscillating_bits",
    "weighted_trials",
]


def top_oscillating_bits(
    flip_counts,
    phi: int,
    marginals=None,
) -> np.ndarray:
    """The ``|Φ|`` most frequently flipped bits of a BP run.

    Ties in flip count are broken toward bits with the least reliable
    posterior (smallest ``|marginal|``) when marginals are supplied,
    then by index for determinism.  Bits that never flipped are only
    used to pad when fewer than ``phi`` bits oscillated.
    """
    flip_counts = np.asarray(flip_counts)
    n = flip_counts.shape[0]
    phi = min(int(phi), n)
    if marginals is None:
        reliability = np.zeros(n)
    else:
        reliability = np.abs(np.asarray(marginals, dtype=np.float64))
    # Sort by (-flips, |marginal|, index): most oscillating first.
    order = np.lexsort((np.arange(n), reliability, -flip_counts))
    return order[:phi].astype(np.intp)


def exhaustive_trials(candidates, w_max: int) -> list[tuple[int, ...]]:
    """All subsets of the candidate set with weight ``1..w_max``.

    Ordered by increasing weight, then lexicographically by candidate
    rank, so the most promising (lowest weight, most oscillating)
    trials run first.
    """
    candidates = [int(c) for c in candidates]
    if w_max < 1:
        raise ValueError("w_max must be at least 1")
    trials: list[tuple[int, ...]] = []
    for w in range(1, min(w_max, len(candidates)) + 1):
        trials.extend(itertools.combinations(candidates, w))
    return trials


def sampled_trials(
    candidates,
    w_max: int,
    n_s: int,
    rng: np.random.Generator,
) -> list[tuple[int, ...]]:
    """``n_s`` random subsets per weight in ``{1..w_max}`` (deduplicated).

    Mirrors the paper's circuit-level strategy: exhaustive enumeration
    is infeasible for ``|Φ| = 50``, so ``n_s x w_max`` trials are drawn
    instead.  Weight-1 trials are drawn without replacement when
    possible.
    """
    candidates = np.asarray([int(c) for c in candidates], dtype=np.intp)
    if w_max < 1:
        raise ValueError("w_max must be at least 1")
    if n_s < 1:
        raise ValueError("n_s must be at least 1")
    trials: list[tuple[int, ...]] = []
    seen: set[tuple[int, ...]] = set()
    for w in range(1, w_max + 1):
        if w > candidates.size:
            break
        if w == 1:
            picks = rng.choice(
                candidates, size=min(n_s, candidates.size), replace=False
            )
            for c in picks:
                trial = (int(c),)
                if trial not in seen:
                    seen.add(trial)
                    trials.append(trial)
            continue
        for _ in range(n_s):
            subset = rng.choice(candidates, size=w, replace=False)
            trial = tuple(sorted(int(c) for c in subset))
            if trial not in seen:
                seen.add(trial)
                trials.append(trial)
    return trials


def weighted_trials(
    candidates,
    weights,
    w_max: int,
    n_s: int,
    rng: np.random.Generator,
) -> list[tuple[int, ...]]:
    """Sample trials with probability proportional to candidate weights.

    The paper's future-work item "improved trial vector sampling
    strategies" (Sec. VII): instead of uniform subsets of ``Φ``, bits
    that oscillated more often are proportionally more likely to be
    flipped, concentrating trials on the strongest suspects.

    ``weights`` are non-negative relevance scores (typically the flip
    counts of the candidate bits); zero-weight candidates are smoothed
    so they remain reachable.
    """
    candidates = np.asarray([int(c) for c in candidates], dtype=np.intp)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != candidates.shape:
        raise ValueError("weights must align with candidates")
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    if w_max < 1:
        raise ValueError("w_max must be at least 1")
    if n_s < 1:
        raise ValueError("n_s must be at least 1")
    smoothed = weights + max(weights.max(), 1.0) * 0.01
    probabilities = smoothed / smoothed.sum()
    trials: list[tuple[int, ...]] = []
    seen: set[tuple[int, ...]] = set()
    for w in range(1, w_max + 1):
        if w > candidates.size:
            break
        for _ in range(n_s):
            subset = rng.choice(
                candidates, size=w, replace=False, p=probabilities
            )
            trial = tuple(sorted(int(c) for c in subset))
            if trial not in seen:
                seen.add(trial)
                trials.append(trial)
    return trials

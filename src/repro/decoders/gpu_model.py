"""Analytic GPU latency models ("GPU Est", paper Sec. VI).

The paper's GPU numbers are themselves an *estimate*: CUDA-Q decodes
the initial syndrome; on failure, trial syndromes are decoded
**one-by-one** because ``decode_batch`` blocks on the slowest member.
We reproduce that estimator as an explicit latency model instead of a
GPU (none is available offline — see DESIGN.md).  Decode *results* come
from the exact same BP/BP-SF implementations; only ``time_seconds`` is
modelled.

Model: a BP call of ``k`` iterations costs
``launch_overhead_us + k * per_iteration_us``; a triggered OSD stage
costs ``osd_us``.  Defaults are calibrated so the BP1000-OSD10 baseline
lands near the paper's measured 7.4 ms average / 40 ms max on a V100
(Fig. 16).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.decoders.base import BatchDecodeResult, DecodeResult, Decoder
from repro.decoders.bposd import BPOSDDecoder
from repro.decoders.bpsf import BPSFDecoder

__all__ = ["GPULatencyModel", "GPUEstimatedBPSF", "GPUEstimatedBPOSD"]


@dataclass(frozen=True)
class GPULatencyModel:
    """Latency parameters of the modelled GPU decoder."""

    per_iteration_us: float = 25.0
    launch_overhead_us: float = 150.0
    osd_us: float = 30000.0

    def bp_seconds(self, iterations) -> float | np.ndarray:
        """Modelled wall time of one BP invocation (vectorises)."""
        return (self.launch_overhead_us
                + iterations * self.per_iteration_us) * 1e-6

    def batch_bp_seconds(self, iteration_counts) -> float:
        """``decode_batch`` semantics: one launch, blocks on the slowest."""
        counts = np.asarray(iteration_counts)
        if counts.size == 0:
            return 0.0
        return self.bp_seconds(int(counts.max()))


class GPUEstimatedBPSF(Decoder):
    """BP-SF with modelled GPU timing (the paper's pessimistic estimate).

    Trial syndromes are charged as sequential launches up to the first
    success, exactly like the paper's CUDA-Q workflow; with
    ``batched=True`` the optimistic all-at-once submission described in
    the paper's discussion is modelled instead.
    """

    def __init__(self, decoder: BPSFDecoder, *,
                 model: GPULatencyModel | None = None,
                 batched: bool = False):
        self.decoder = decoder
        self.model = model or GPULatencyModel()
        self.batched = batched
        self.name = "BP-SF (GPU_Est)"

    def decode(self, syndrome) -> DecodeResult:
        return self.decode_many(np.atleast_2d(syndrome)).to_results()[0]

    def decode_many(self, syndromes) -> BatchDecodeResult:
        """Batch decode with the GPU time model applied column-wise.

        Trials before the winner are charged a full-budget launch each
        (they all failed); the winner's own iterations are recovered as
        ``iterations - initial_iterations - winner * budget``, which is
        exact under both winner-selection rules because pre-winner
        trials are always charged the full budget.
        """
        batch = self.decoder.decode_many(syndromes)
        model = self.model
        elapsed = model.bp_seconds(batch.initial_iterations.astype(float))
        post = (batch.stage != "initial") & (batch.trials_attempted > 0)
        trial_budget = self.decoder.bp_trial.max_iter
        if self.batched:
            # One batch launch; blocks on the slowest trial.
            elapsed = elapsed + post * model.bp_seconds(trial_budget)
        else:
            winner = batch.winning_trial
            no_winner = post & (winner < 0)
            elapsed = elapsed + np.where(
                no_winner,
                batch.trials_attempted * model.bp_seconds(trial_budget),
                0.0,
            )
            won = post & (winner >= 0)
            winner_iters = np.maximum(
                batch.iterations - batch.initial_iterations
                - winner * trial_budget,
                1,
            )
            elapsed = elapsed + np.where(
                won,
                winner * model.bp_seconds(trial_budget)
                + model.bp_seconds(winner_iters.astype(float)),
                0.0,
            )
        batch.time_seconds = np.asarray(elapsed, dtype=np.float64)
        return batch


class GPUEstimatedBPOSD(Decoder):
    """BP-OSD with modelled GPU timing."""

    def __init__(self, decoder: BPOSDDecoder, *,
                 model: GPULatencyModel | None = None):
        self.decoder = decoder
        self.model = model or GPULatencyModel()
        self.name = "BP1000-OSD10 (GPU)"

    def decode(self, syndrome) -> DecodeResult:
        return self.decode_many(np.atleast_2d(syndrome)).to_results()[0]

    def decode_many(self, syndromes) -> BatchDecodeResult:
        """Batch decode with the GPU time model applied column-wise."""
        batch = self.decoder.decode_many(syndromes)
        elapsed = self.model.bp_seconds(batch.iterations.astype(float))
        elapsed = elapsed + (batch.stage == "post") * (self.model.osd_us * 1e-6)
        batch.time_seconds = np.asarray(elapsed, dtype=np.float64)
        return batch

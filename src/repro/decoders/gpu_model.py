"""Analytic GPU latency models ("GPU Est", paper Sec. VI).

The paper's GPU numbers are themselves an *estimate*: CUDA-Q decodes
the initial syndrome; on failure, trial syndromes are decoded
**one-by-one** because ``decode_batch`` blocks on the slowest member.
We reproduce that estimator as an explicit latency model instead of a
GPU (none is available offline — see DESIGN.md).  Decode *results* come
from the exact same BP/BP-SF implementations; only ``time_seconds`` is
modelled.

Model: a BP call of ``k`` iterations costs
``launch_overhead_us + k * per_iteration_us``; a triggered OSD stage
costs ``osd_us``.  Defaults are calibrated so the BP1000-OSD10 baseline
lands near the paper's measured 7.4 ms average / 40 ms max on a V100
(Fig. 16).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.decoders.base import DecodeResult, Decoder
from repro.decoders.bposd import BPOSDDecoder
from repro.decoders.bpsf import BPSFDecoder

__all__ = ["GPULatencyModel", "GPUEstimatedBPSF", "GPUEstimatedBPOSD"]


@dataclass(frozen=True)
class GPULatencyModel:
    """Latency parameters of the modelled GPU decoder."""

    per_iteration_us: float = 25.0
    launch_overhead_us: float = 150.0
    osd_us: float = 30000.0

    def bp_seconds(self, iterations: int) -> float:
        """Modelled wall time of one BP invocation."""
        return (self.launch_overhead_us
                + iterations * self.per_iteration_us) * 1e-6

    def batch_bp_seconds(self, iteration_counts) -> float:
        """``decode_batch`` semantics: one launch, blocks on the slowest."""
        counts = np.asarray(iteration_counts)
        if counts.size == 0:
            return 0.0
        return self.bp_seconds(int(counts.max()))


class GPUEstimatedBPSF(Decoder):
    """BP-SF with modelled GPU timing (the paper's pessimistic estimate).

    Trial syndromes are charged as sequential launches up to the first
    success, exactly like the paper's CUDA-Q workflow; with
    ``batched=True`` the optimistic all-at-once submission described in
    the paper's discussion is modelled instead.
    """

    def __init__(self, decoder: BPSFDecoder, *,
                 model: GPULatencyModel | None = None,
                 batched: bool = False):
        self.decoder = decoder
        self.model = model or GPULatencyModel()
        self.batched = batched
        self.name = "BP-SF (GPU_Est)"

    def decode(self, syndrome) -> DecodeResult:
        result = self.decoder.decode(syndrome)
        model = self.model
        elapsed = model.bp_seconds(result.initial_iterations)
        if result.stage != "initial" and result.trials_attempted:
            trial_budget = self.decoder.bp_trial.max_iter
            winner = result.winning_trial
            if self.batched:
                # One batch launch; blocks on the slowest trial.
                elapsed += model.bp_seconds(trial_budget)
            elif winner is None:
                elapsed += result.trials_attempted * model.bp_seconds(
                    trial_budget
                )
            else:
                # Trials before the winner all failed (full budget),
                # then the winner's own iterations.
                winner_iters = (
                    result.iterations
                    - result.initial_iterations
                    - winner * trial_budget
                )
                elapsed += winner * model.bp_seconds(trial_budget)
                elapsed += model.bp_seconds(max(winner_iters, 1))
        result.time_seconds = elapsed
        return result


class GPUEstimatedBPOSD(Decoder):
    """BP-OSD with modelled GPU timing."""

    def __init__(self, decoder: BPOSDDecoder, *,
                 model: GPULatencyModel | None = None):
        self.decoder = decoder
        self.model = model or GPULatencyModel()
        self.name = "BP1000-OSD10 (GPU)"

    def decode(self, syndrome) -> DecodeResult:
        result = self.decoder.decode(syndrome)
        elapsed = self.model.bp_seconds(result.iterations)
        if result.stage == "post":
            elapsed += self.model.osd_us * 1e-6
        result.time_seconds = elapsed
        return result

"""BP-SF: belief propagation with syndrome-flip post-processing.

The paper's contribution (Algorithm 1).  The flow is:

1. run BP with oscillation tracking;
2. on failure, take the ``|Φ|`` most oscillating bits as candidates and
   generate trial vectors ``t`` (subsets of ``Φ``);
3. for each trial, flip the syndrome — ``s' = s ⊕ t·Hᵀ`` — and decode
   ``s'`` with a short, independent BP instance;
4. return ``ê ⊕ t`` for the first trial whose BP converges (flipping
   ``t`` back restores consistency with the original syndrome).

Because any syndrome-satisfying solution is very likely in the correct
coset for degenerate high-distance qLDPC codes, no maximum-likelihood
selection is performed — first success wins (paper Sec. IV).

All trials decode in one *batched* BP call, which is the software
analogue of the fully parallel hardware execution the paper targets.
Latency accounting distinguishes

* ``iterations`` — serial-equivalent cost (initial + every trial up to
  and including the first success, failed trials charged ``max_iter``),
* ``parallel_iterations`` — initial + the fastest successful trial.
"""

from __future__ import annotations

import time

import numpy as np

from repro._matrix import mod2_right_mul
from repro.decoders.base import DecodeResult, Decoder
from repro.decoders.bp import MinSumBP
from repro.decoders.layered import LayeredMinSumBP
from repro.decoders.trial_vectors import (
    exhaustive_trials,
    sampled_trials,
    top_oscillating_bits,
    weighted_trials,
)
from repro.problem import DecodingProblem

__all__ = ["BPSFDecoder"]


class BPSFDecoder(Decoder):
    """The paper's speculative syndrome-flip decoder.

    Parameters
    ----------
    problem:
        Decoding problem (check matrix, priors, logicals).
    max_iter:
        Iteration budget of the initial BP attempt (``BP100`` in the
        paper's labels).
    phi:
        Candidate set size ``|Φ|``.
    w_max:
        Maximum trial-vector weight.
    n_s:
        Samples per weight (sampled strategy only).
    strategy:
        ``"exhaustive"`` (code capacity, all subsets up to ``w_max``),
        ``"sampled"`` (circuit level, ``n_s`` uniform subsets per
        weight) or ``"weighted"`` (subsets sampled proportionally to
        oscillation counts — the paper's future-work variant).
    trial_max_iter:
        Iteration budget per trial BP (defaults to ``max_iter``).
    layered:
        Use the layered schedule for both the initial and trial BP.
    seed:
        Seed for the trial-sampling RNG (sampled strategy).
    candidate_selector:
        Optional override ``f(flip_counts, phi, marginals, rng) ->
        indices`` replacing oscillation-based selection (used by the
        ablation studies in ``benchmarks/``).
    """

    def __init__(
        self,
        problem: DecodingProblem,
        *,
        max_iter: int = 100,
        phi: int = 50,
        w_max: int = 10,
        n_s: int = 10,
        strategy: str = "sampled",
        trial_max_iter: int | None = None,
        damping: str | float = "adaptive",
        layered: bool = False,
        seed: int = 0,
        bp_kwargs: dict | None = None,
        candidate_selector=None,
        bp_cls=None,
    ):
        if strategy not in ("sampled", "exhaustive", "weighted"):
            raise ValueError(f"unknown strategy {strategy!r}")
        if bp_cls is not None and layered:
            raise ValueError("pass either bp_cls or layered, not both")
        self.candidate_selector = candidate_selector
        self.problem = problem
        self.phi = int(phi)
        self.w_max = int(w_max)
        self.n_s = int(n_s)
        self.strategy = strategy
        self._rng = np.random.default_rng(seed)
        kwargs = dict(bp_kwargs or {})
        # Sec. VII: BP-SF composes with any inner BP whose failures
        # oscillate — pass e.g. SumProductBP or MemoryMinSumBP here.
        if bp_cls is None:
            bp_cls = LayeredMinSumBP if layered else MinSumBP
        self.bp_initial = bp_cls(
            problem,
            max_iter=max_iter,
            damping=damping,
            track_oscillations=True,
            **kwargs,
        )
        self.bp_trial = bp_cls(
            problem,
            max_iter=trial_max_iter or max_iter,
            damping=damping,
            **kwargs,
        )
        self.name = (
            f"BP-SF(BP{max_iter}, wmax={w_max}, phi={phi}, ns={n_s})"
        )

    # -- trial generation -------------------------------------------------

    def generate_trials(self, flip_counts, marginals) -> list[tuple[int, ...]]:
        """Trial vectors for one failed decode (Algorithm 1's inner set)."""
        if self.candidate_selector is not None:
            candidates = self.candidate_selector(
                flip_counts, self.phi, marginals, self._rng
            )
        else:
            candidates = top_oscillating_bits(flip_counts, self.phi, marginals)
        if self.strategy == "exhaustive":
            return exhaustive_trials(candidates, self.w_max)
        if self.strategy == "weighted":
            flips = np.asarray(flip_counts)
            return weighted_trials(
                candidates, flips[candidates], self.w_max, self.n_s,
                self._rng,
            )
        return sampled_trials(candidates, self.w_max, self.n_s, self._rng)

    def trial_syndromes(self, syndrome, trials) -> np.ndarray:
        """Flipped syndromes ``s ⊕ t·Hᵀ`` for each trial vector."""
        n = self.problem.n_mechanisms
        flips = np.zeros((len(trials), n), dtype=np.uint8)
        for row, trial in enumerate(trials):
            flips[row, list(trial)] = 1
        deltas = mod2_right_mul(flips, self.problem.check_matrix)
        return np.asarray(syndrome, dtype=np.uint8)[None, :] ^ deltas

    # -- decoding ----------------------------------------------------------

    def decode(self, syndrome) -> DecodeResult:
        start = time.perf_counter()
        syndrome = np.asarray(syndrome, dtype=np.uint8).reshape(-1)
        initial = self.bp_initial.decode(syndrome)
        if initial.converged:
            initial.time_seconds = time.perf_counter() - start
            return initial

        trials = self.generate_trials(initial.flip_counts, initial.marginals)
        if not trials:
            initial.stage = "failed"
            initial.time_seconds = time.perf_counter() - start
            return initial

        trial_synd = self.trial_syndromes(syndrome, trials)
        batch = self.bp_trial.decode_many(trial_synd)

        init_iters = int(initial.iterations)
        result = self._pick_winner(syndrome, trials, batch, initial, init_iters)
        result.time_seconds = time.perf_counter() - start
        return result

    def _pick_winner(
        self, syndrome, trials, batch, initial, init_iters
    ) -> DecodeResult:
        trial_budget = self.bp_trial.max_iter
        if not batch.converged.any():
            return DecodeResult(
                error=initial.error,
                converged=False,
                iterations=init_iters + trial_budget * len(trials),
                parallel_iterations=init_iters + trial_budget,
                initial_iterations=init_iters,
                stage="failed",
                trials_attempted=len(trials),
                marginals=initial.marginals,
                flip_counts=initial.flip_counts,
            )
        # First success in generation order (the serial-return rule);
        # the fastest success sets the fully-parallel latency.
        winner = int(np.argmax(batch.converged))
        error = batch.errors[winner].copy()
        error[list(trials[winner])] ^= 1
        serial_iters = init_iters + int(
            np.where(batch.converged[:winner], batch.iterations[:winner],
                     trial_budget).sum()
        ) + int(batch.iterations[winner])
        fastest = int(batch.iterations[batch.converged].min())
        return DecodeResult(
            error=error,
            converged=True,
            iterations=serial_iters,
            parallel_iterations=init_iters + fastest,
            initial_iterations=init_iters,
            stage="post",
            trials_attempted=len(trials),
            winning_trial=winner,
            marginals=initial.marginals,
            flip_counts=initial.flip_counts,
        )

    def decode_batch(self, syndromes) -> list[DecodeResult]:
        """Batch decode: initial BP vectorised, SF per failing shot."""
        syndromes = np.atleast_2d(np.asarray(syndromes, dtype=np.uint8))
        initial = self.bp_initial.decode_many(syndromes)
        out: list[DecodeResult] = []
        for i in range(len(initial)):
            if initial.converged[i]:
                out.append(
                    DecodeResult(
                        error=initial.errors[i],
                        converged=True,
                        iterations=int(initial.iterations[i]),
                        stage="initial",
                        marginals=initial.marginals[i],
                        flip_counts=initial.flip_counts[i],
                    )
                )
                continue
            trials = self.generate_trials(
                initial.flip_counts[i], initial.marginals[i]
            )
            if not trials:
                out.append(
                    DecodeResult(
                        error=initial.errors[i],
                        converged=False,
                        iterations=int(initial.iterations[i]),
                        stage="failed",
                    )
                )
                continue
            trial_synd = self.trial_syndromes(syndromes[i], trials)
            batch = self.bp_trial.decode_many(trial_synd)
            out.append(
                self._pick_winner(
                    syndromes[i], trials, batch,
                    _row_result(initial, i), int(initial.iterations[i]),
                )
            )
        return out


def _row_result(batch, i) -> DecodeResult:
    return DecodeResult(
        error=batch.errors[i],
        converged=bool(batch.converged[i]),
        iterations=int(batch.iterations[i]),
        marginals=batch.marginals[i],
        flip_counts=(
            None if batch.flip_counts is None else batch.flip_counts[i]
        ),
    )

"""BP-SF: belief propagation with syndrome-flip post-processing.

The paper's contribution (Algorithm 1).  The flow is:

1. run BP with oscillation tracking;
2. on failure, take the ``|Φ|`` most oscillating bits as candidates and
   generate trial vectors ``t`` (subsets of ``Φ``);
3. for each trial, flip the syndrome — ``s' = s ⊕ t·Hᵀ`` — and decode
   ``s'`` with a short, independent BP instance;
4. return ``ê ⊕ t`` for the first trial whose BP converges (flipping
   ``t`` back restores consistency with the original syndrome).

Because any syndrome-satisfying solution is very likely in the correct
coset for degenerate high-distance qLDPC codes, no maximum-likelihood
selection is performed — first success wins (paper Sec. IV).

All trials decode in one *batched* BP call, which is the software
analogue of the fully parallel hardware execution the paper targets.
``decode_many`` goes further and pools trials **across shots**: the
trial syndromes of every failed shot in a batch are decoded by a single
trial-BP call, so a batch with ``F`` failures costs one pooled BP run
instead of ``F`` sequential ones.
Latency accounting distinguishes

* ``iterations`` — serial-equivalent cost (initial + every trial up to
  and including the first success, failed trials charged ``max_iter``),
* ``parallel_iterations`` — initial + the fastest successful trial.
"""

from __future__ import annotations

import time

import numpy as np

from repro._matrix import mod2_right_mul
from repro.decoders.base import (
    BatchDecodeResult,
    DecodeResult,
    Decoder,
    distribute_batch_time,
)
from repro.decoders.bp import MinSumBP
from repro.decoders.layered import LayeredMinSumBP
from repro.decoders.trial_vectors import (
    exhaustive_trials,
    sampled_trials,
    top_oscillating_bits,
    weighted_trials,
)
from repro.problem import DecodingProblem

__all__ = ["BPSFDecoder"]


def attribute_pooled_trials(
    pooled, shot_counts, budget, selection, out, error_for
) -> None:
    """Write per-shot winner accounting for a pooled trial decode.

    ``pooled`` is the trial BP's :class:`BatchDecodeResult` over the
    concatenated trial rows of every failed shot; ``shot_counts`` is
    the shot-index map ``[(shot, n_trials), ...]`` in pool order.  The
    winner columns of ``out`` (an under-construction batch result) are
    updated in place; ``error_for(shot, winner, pool_row)`` returns the
    corrected error vector for a rescued shot.  Shared by BP-SF and the
    prior-modification ensembles so their accounting cannot drift.

    Selection rules: ``"serial"`` returns the first success in
    generation order and charges every earlier trial its own cost
    (failed trials cost the full budget); ``"parallel"`` returns the
    first success in time (fewest iterations, ties to the lowest
    index) and charges the full budget for every trial ahead of the
    winner, an upper bound since retired trials never report.
    """
    offset = 0
    for i, k in shot_counts:
        conv = pooled.converged[offset:offset + k]
        iters = pooled.iterations[offset:offset + k]
        out.trials_attempted[i] = k
        if conv.any():
            if selection == "parallel":
                conv_idx = np.nonzero(conv)[0]
                winner = int(conv_idx[np.argmin(iters[conv_idx])])
                out.iterations[i] += winner * budget + int(iters[winner])
                out.parallel_iterations[i] += int(iters[winner])
            else:
                winner = int(np.argmax(conv))
                out.iterations[i] += int(
                    np.where(conv[:winner], iters[:winner], budget).sum()
                ) + int(iters[winner])
                out.parallel_iterations[i] += int(iters[conv].min())
            out.errors[i] = error_for(i, winner, offset + winner)
            out.converged[i] = True
            out.stage[i] = "post"
            out.winning_trial[i] = winner
        else:
            out.iterations[i] += budget * k
            out.parallel_iterations[i] += budget
        offset += k


class BPSFDecoder(Decoder):
    """The paper's speculative syndrome-flip decoder.

    Parameters
    ----------
    problem:
        Decoding problem (check matrix, priors, logicals).
    max_iter:
        Iteration budget of the initial BP attempt (``BP100`` in the
        paper's labels).
    phi:
        Candidate set size ``|Φ|``.
    w_max:
        Maximum trial-vector weight.
    n_s:
        Samples per weight (sampled strategy only).
    strategy:
        ``"exhaustive"`` (code capacity, all subsets up to ``w_max``),
        ``"sampled"`` (circuit level, ``n_s`` uniform subsets per
        weight) or ``"weighted"`` (subsets sampled proportionally to
        oscillation counts — the paper's future-work variant).
    trial_max_iter:
        Iteration budget per trial BP (defaults to ``max_iter``).
    selection:
        Winner-selection rule among converged trials.  ``"serial"``
        (default) returns the first success in *generation* order —
        the serial-execution return rule the repository's accounting
        has always used.  ``"parallel"`` returns the first success in
        *time* (fewest iterations; ties break to the lowest generation
        index) — the paper's fully-parallel hardware semantics, where
        all trials run in lockstep and the first to converge wins.  In
        the parallel mode the pooled batch path retires a shot's
        remaining trials the moment one converges (group early-stop),
        so rescued shots stop paying for trials that can no longer win.
        The early-stop execution needs a flooding-schedule trial BP
        (:class:`MinSumBP` or a subclass); with a layered or custom
        ``bp_cls`` the pooled trials simply run to their full budget —
        identical results and accounting, none of the savings.  Either
        way, ``iterations`` charges the full trial budget for every
        trial ahead of the winner in generation order (an upper bound,
        since retired trials never report their own counts).
    layered:
        Use the layered schedule for both the initial and trial BP.
    backend:
        Kernel backend for the inner BP (``"reference"``/``"fused"``/
        ``"auto"``; see :mod:`repro.decoders.kernels`).  Forwarded to
        both the initial and trial decoders when the inner BP is a
        :class:`~repro.decoders.bp.MinSumBP` subclass; the layered
        schedule has its own update structure and ignores the knob.
    seed:
        Seed for the trial-sampling RNG (sampled strategy).
    candidate_selector:
        Optional override ``f(flip_counts, phi, marginals, rng) ->
        indices`` replacing oscillation-based selection (used by the
        ablation studies in ``benchmarks/``).
    """

    def __init__(
        self,
        problem: DecodingProblem,
        *,
        max_iter: int = 100,
        phi: int = 50,
        w_max: int = 10,
        n_s: int = 10,
        strategy: str = "sampled",
        trial_max_iter: int | None = None,
        selection: str = "serial",
        damping: str | float = "adaptive",
        layered: bool = False,
        backend: str | None = None,
        seed: int = 0,
        bp_kwargs: dict | None = None,
        candidate_selector=None,
        bp_cls=None,
    ):
        if strategy not in ("sampled", "exhaustive", "weighted"):
            raise ValueError(f"unknown strategy {strategy!r}")
        if selection not in ("serial", "parallel"):
            raise ValueError(f"unknown selection {selection!r}")
        if bp_cls is not None and layered:
            raise ValueError("pass either bp_cls or layered, not both")
        self.candidate_selector = candidate_selector
        self.selection = selection
        self.problem = problem
        self.phi = int(phi)
        self.w_max = int(w_max)
        self.n_s = int(n_s)
        self.strategy = strategy
        self._rng = np.random.default_rng(seed)
        kwargs = dict(bp_kwargs or {})
        # Sec. VII: BP-SF composes with any inner BP whose failures
        # oscillate — pass e.g. SumProductBP or MemoryMinSumBP here.
        if bp_cls is None:
            bp_cls = LayeredMinSumBP if layered else MinSumBP
        if backend is not None and issubclass(bp_cls, MinSumBP):
            kwargs["backend"] = backend
        self.bp_initial = bp_cls(
            problem,
            max_iter=max_iter,
            damping=damping,
            track_oscillations=True,
            **kwargs,
        )
        self.bp_trial = bp_cls(
            problem,
            max_iter=trial_max_iter or max_iter,
            damping=damping,
            **kwargs,
        )
        tag = ", par" if selection == "parallel" else ""
        self.name = (
            f"BP-SF(BP{max_iter}, wmax={w_max}, phi={phi}, ns={n_s}{tag})"
        )

    def reseed(self, rng: np.random.Generator) -> None:
        """Reset the trial-sampling stream (sharded-engine discipline)."""
        self._rng = rng

    # -- trial generation -------------------------------------------------

    def generate_trials(self, flip_counts, marginals) -> list[tuple[int, ...]]:
        """Trial vectors for one failed decode (Algorithm 1's inner set)."""
        if self.candidate_selector is not None:
            candidates = self.candidate_selector(
                flip_counts, self.phi, marginals, self._rng
            )
        else:
            candidates = top_oscillating_bits(flip_counts, self.phi, marginals)
        if self.strategy == "exhaustive":
            return exhaustive_trials(candidates, self.w_max)
        if self.strategy == "weighted":
            flips = np.asarray(flip_counts)
            return weighted_trials(
                candidates, flips[candidates], self.w_max, self.n_s,
                self._rng,
            )
        return sampled_trials(candidates, self.w_max, self.n_s, self._rng)

    def trial_syndromes(self, syndrome, trials) -> np.ndarray:
        """Flipped syndromes ``s ⊕ t·Hᵀ`` for each trial vector.

        The flip matrix is built in one fancy-indexed assignment from
        the flattened trial tuples — with hundreds of trials per failed
        shot (exhaustive strategy) a per-trial Python loop is
        measurably slower than the decode itself.
        """
        n = self.problem.n_mechanisms
        flips = np.zeros((len(trials), n), dtype=np.uint8)
        lens = np.fromiter(
            (len(t) for t in trials), dtype=np.intp, count=len(trials)
        )
        if lens.sum() > 0:
            rows = np.repeat(np.arange(len(trials), dtype=np.intp), lens)
            cols = np.fromiter(
                (bit for trial in trials for bit in trial),
                dtype=np.intp,
                count=int(lens.sum()),
            )
            flips[rows, cols] = 1
        deltas = mod2_right_mul(flips, self.problem.check_matrix)
        return np.asarray(syndrome, dtype=np.uint8)[None, :] ^ deltas

    # -- decoding ----------------------------------------------------------

    def decode(self, syndrome) -> DecodeResult:
        start = time.perf_counter()
        result = self.decode_many(np.atleast_2d(syndrome)).to_results()[0]
        result.time_seconds = time.perf_counter() - start
        return result

    def decode_many(self, syndromes) -> BatchDecodeResult:
        """Batch decode with *cross-shot trial pooling*.

        The initial BP runs vectorised over the whole batch; then the
        trial syndromes of **every** failed shot are collected into one
        pooled array and decoded by a **single** ``decode_many`` call on
        the trial BP — the software analogue of the paper's fully
        parallel hardware execution.  A batch with ``F`` failures costs
        one pooled BP run instead of ``F`` sequential runs; a shot-index
        map attributes winners back to their shots.

        All branches (converged, no-trials, post-processed, failed)
        share the same column bookkeeping, so ``marginals``,
        ``flip_counts`` and ``parallel_iterations`` are preserved for
        every shot exactly as the single-shot path reports them.
        """
        start = time.perf_counter()
        syndromes = np.atleast_2d(np.asarray(syndromes, dtype=np.uint8))
        initial = self.bp_initial.decode_many(syndromes)

        # Columns start from the initial BP; __post_init__ derives the
        # stage/parallel/initial defaults the attribution then updates.
        result = BatchDecodeResult(
            errors=initial.errors.copy(),
            converged=initial.converged.copy(),
            iterations=initial.iterations.astype(np.int64).copy(),
            marginals=initial.marginals,
            flip_counts=initial.flip_counts,
        )

        # Pool the trial syndromes of all failed shots; `shot_trials`
        # is the shot-index map used to attribute winners afterwards.
        shot_trials: list[tuple[int, list[tuple[int, ...]]]] = []
        pooled_synd: list[np.ndarray] = []
        for i in np.nonzero(~initial.converged)[0]:
            trials = self.generate_trials(
                initial.flip_counts[i], initial.marginals[i]
            )
            if not trials:
                continue
            shot_trials.append((int(i), trials))
            pooled_synd.append(self.trial_syndromes(syndromes[i], trials))

        if pooled_synd:
            all_synd = np.concatenate(pooled_synd)
            if self.selection == "parallel" and isinstance(
                self.bp_trial, MinSumBP
            ):
                # Group early-stop: a shot's first converging trial
                # retires the rest of that shot's pool rows.
                groups = np.repeat(
                    np.arange(len(shot_trials)),
                    [len(t) for _, t in shot_trials],
                )
                pooled = self.bp_trial.decode_many(
                    all_synd, stop_groups=groups
                )
            else:
                pooled = self.bp_trial.decode_many(all_synd)

            trials_of = dict(shot_trials)

            def error_for(shot, winner, pool_row):
                error = pooled.errors[pool_row].copy()
                error[list(trials_of[shot][winner])] ^= 1
                return error

            attribute_pooled_trials(
                pooled,
                [(i, len(t)) for i, t in shot_trials],
                self.bp_trial.max_iter,
                self.selection,
                result,
                error_for,
            )

        elapsed = time.perf_counter() - start
        distribute_batch_time(result, elapsed)
        return result

"""Sum-product (exact tanh-rule) BP — an alternative inner decoder.

The paper uses min-sum throughout "because of its simplicity and
computational efficiency" and notes that BP-SF "could potentially
benefit from incorporating more advanced BP-based techniques as long as
their convergence is also affected by oscillating bits" (Sec. VII).
This module provides that extension: the exact check-node rule

.. math::

    l_{c \\to v} = (-1)^{s_c} \\cdot 2\\,\\mathrm{atanh}
        \\Big( \\prod_{v' \\ne v} \\tanh(l_{v' \\to c} / 2) \\Big)

implemented with the usual log-magnitude exclusion trick so it stays
fully vectorised.  Everything else (scheduling, oscillation tracking,
batching) is inherited from :class:`~repro.decoders.bp.MinSumBP`, so a
:class:`~repro.decoders.bpsf.BPSFDecoder` can run on top of it
unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.decoders.bp import MinSumBP

__all__ = ["SumProductBP"]

# tanh saturates to 1.0 in float32 beyond ~9; keep inputs inside the
# invertible range so atanh stays finite.
_TANH_CAP = 0.9999999


class SumProductBP(MinSumBP):
    """Flooding-schedule sum-product decoder.

    The ``damping`` parameter acts as a message scaling factor exactly
    as in normalised min-sum; pass ``damping=1.0`` for the textbook
    update.
    """

    def _check_update(self, v2c, sign_syn, alpha) -> np.ndarray:
        edges = self.edges
        starts = edges.check_starts
        seg = edges.edge_segment

        neg = v2c < 0
        magnitude = np.abs(v2c)
        # log tanh(|l|/2) is <= 0; exclusion is a subtraction in log space.
        t = np.tanh(np.minimum(magnitude, self.clamp) / 2.0)
        t = np.clip(t, 1e-12, _TANH_CAP)
        log_t = np.log(t)
        totals = np.add.reduceat(log_t, starts, axis=1)
        others = totals[:, seg] - log_t
        product = np.exp(np.minimum(others, 0.0))
        product = np.clip(product, 0.0, _TANH_CAP)
        magnitude_out = 2.0 * np.arctanh(product)
        magnitude_out = np.minimum(magnitude_out, self.clamp)

        parity = np.bitwise_xor.reduceat(neg, starts, axis=1)
        sign = 1.0 - 2.0 * (parity[:, seg] ^ neg)
        return (alpha * magnitude_out * sign * sign_syn).astype(self.dtype)

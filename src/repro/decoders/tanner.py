"""Edge-list representation of a Tanner graph for vectorised BP.

Message passing works on flat edge arrays rather than per-node Python
loops.  Edges are stored twice conceptually — sorted by check (for the
check-to-variable reduction) and sorted by variable (for the
variable-side sums) — with a permutation translating between the two
orders.  All segment reductions use ``numpy.ufunc.reduceat`` over the
non-empty segments.

Because the index arrays are pure functions of the check matrix (and
the lexsorts that build them dominate decoder construction), instances
are shared: :func:`shared_tanner_edges` caches one
:class:`TannerEdges` per distinct matrix *content*, so BP-SF's
initial/trial pair, ensemble legs and registry-built decoders on the
same problem all reuse a single index set.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

import numpy as np
import scipy.sparse as sp

__all__ = ["TannerEdges", "shared_tanner_edges"]


class TannerEdges:
    """Precomputed edge indexing for a binary check matrix."""

    def __init__(self, check_matrix):
        h = check_matrix.tocoo() if sp.issparse(check_matrix) else sp.coo_matrix(
            np.asarray(check_matrix)
        )
        self.n_checks, self.n_vars = h.shape
        order = np.lexsort((h.col, h.row))
        #: check id of each edge (check-sorted order)
        self.edge_check = h.row[order].astype(np.intp)
        #: variable id of each edge (check-sorted order)
        self.edge_var = h.col[order].astype(np.intp)
        self.n_edges = self.edge_check.shape[0]

        # Check-side segments (non-empty checks only).
        self.check_ids, check_deg = np.unique(self.edge_check, return_counts=True)
        self.check_starts = np.concatenate([[0], np.cumsum(check_deg[:-1])])
        #: per-edge index into the non-empty-check segment arrays
        self.edge_segment = np.repeat(
            np.arange(self.check_ids.shape[0]), check_deg
        )
        #: common degree of all non-empty checks, or ``None`` if mixed.
        #: With a uniform degree the check-sorted edge axis reshapes to
        #: ``(checks, degree)`` and segment reductions become plain
        #: contiguous axis reductions (the fused kernel's fast path).
        self.uniform_check_degree = (
            int(check_deg[0])
            if check_deg.size and (check_deg == check_deg[0]).all()
            else None
        )
        #: checks with no edges (their syndrome bit can never be matched)
        self.empty_check_ids = np.setdiff1d(
            np.arange(self.n_checks, dtype=np.intp), self.check_ids
        )
        #: whether every check has at least one edge
        self.all_checks_nonempty = self.empty_check_ids.size == 0

        # Variable-side order: permutation from check-sorted to var-sorted.
        self.to_var_order = np.lexsort((self.edge_check, self.edge_var))
        var_sorted = self.edge_var[self.to_var_order]
        self.var_ids, var_deg = np.unique(var_sorted, return_counts=True)
        self.var_starts = np.concatenate([[0], np.cumsum(var_deg[:-1])])
        #: per-edge (var order) index into the non-empty-var segments
        self.edge_var_segment = np.repeat(
            np.arange(self.var_ids.shape[0]), var_deg
        )
        #: common degree of all non-isolated variables, or ``None``.
        self.uniform_var_degree = (
            int(var_deg[0])
            if var_deg.size and (var_deg == var_deg[0]).all()
            else None
        )
        #: variable id of each edge in var-sorted order
        self.edge_var_sorted = var_sorted
        #: inverse of ``to_var_order``: gathers var-sorted edge values
        #: back into check-sorted positions without a scatter assignment
        self.from_var_order = np.empty(self.n_edges, dtype=np.intp)
        self.from_var_order[self.to_var_order] = np.arange(
            self.n_edges, dtype=np.intp
        )
        #: whether every variable has at least one edge (no isolated
        #: columns) — lets the variable-side sums skip the scatter
        self.all_vars_active = self.var_ids.size == self.n_vars

    def scatter_var_sums(self, per_var_values: np.ndarray) -> np.ndarray:
        """Expand per-(non-empty)-variable values to the full width.

        ``per_var_values`` has shape ``(..., len(var_ids))``; returns
        ``(..., n_vars)`` with zeros at isolated variables.  When every
        variable has an edge the values already span the full width and
        are returned as-is (no zeros array, no fancy assignment).
        """
        if self.all_vars_active:
            return per_var_values
        shape = per_var_values.shape[:-1] + (self.n_vars,)
        out = np.zeros(shape, dtype=per_var_values.dtype)
        out[..., self.var_ids] = per_var_values
        return out


# -- shared-instance cache -------------------------------------------------

# LRU-bounded: a long-lived process sweeping many distinct matrices
# (figure sweeps, property tests, a decode service) must not accumulate
# index arrays forever.  The bound comfortably covers every code the
# repository sweeps in one run; decoders hold their own reference, so
# eviction never invalidates a live decoder.
_EDGES_CACHE_MAX = 64
_EDGES_CACHE: "OrderedDict[tuple, TannerEdges]" = OrderedDict()


def _matrix_fingerprint(check_matrix) -> tuple:
    """Content key for a binary matrix (shape + CSR structure hash)."""
    if sp.issparse(check_matrix):
        h = check_matrix.tocsr()
    else:
        h = sp.csr_matrix(np.asarray(check_matrix))
    digest = hashlib.sha1()
    digest.update(np.ascontiguousarray(h.indptr).tobytes())
    digest.update(np.ascontiguousarray(h.indices).tobytes())
    digest.update(np.ascontiguousarray(h.data).tobytes())
    return (h.shape, h.nnz, digest.hexdigest())


def shared_tanner_edges(check_matrix) -> TannerEdges:
    """A cached :class:`TannerEdges` for this matrix content.

    Keyed on a content hash, so every decoder built on the same check
    matrix (BP-SF's initial and trial BP, ensemble/relay legs, registry
    sweeps) shares one set of lexsorted index arrays instead of
    rebuilding them per instance.  The returned instance is read-only
    by convention — kernels keep their mutable workspace elsewhere.
    """
    key = _matrix_fingerprint(check_matrix)
    edges = _EDGES_CACHE.get(key)
    if edges is None:
        edges = TannerEdges(check_matrix)
        _EDGES_CACHE[key] = edges
        if len(_EDGES_CACHE) > _EDGES_CACHE_MAX:
            _EDGES_CACHE.popitem(last=False)
    else:
        _EDGES_CACHE.move_to_end(key)
    return edges

"""Edge-list representation of a Tanner graph for vectorised BP.

Message passing works on flat edge arrays rather than per-node Python
loops.  Edges are stored twice conceptually — sorted by check (for the
check-to-variable reduction) and sorted by variable (for the
variable-side sums) — with a permutation translating between the two
orders.  All segment reductions use ``numpy.ufunc.reduceat`` over the
non-empty segments.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = ["TannerEdges"]


class TannerEdges:
    """Precomputed edge indexing for a binary check matrix."""

    def __init__(self, check_matrix):
        h = check_matrix.tocoo() if sp.issparse(check_matrix) else sp.coo_matrix(
            np.asarray(check_matrix)
        )
        self.n_checks, self.n_vars = h.shape
        order = np.lexsort((h.col, h.row))
        #: check id of each edge (check-sorted order)
        self.edge_check = h.row[order].astype(np.intp)
        #: variable id of each edge (check-sorted order)
        self.edge_var = h.col[order].astype(np.intp)
        self.n_edges = self.edge_check.shape[0]

        # Check-side segments (non-empty checks only).
        self.check_ids, check_deg = np.unique(self.edge_check, return_counts=True)
        self.check_starts = np.concatenate([[0], np.cumsum(check_deg[:-1])])
        #: per-edge index into the non-empty-check segment arrays
        self.edge_segment = np.repeat(
            np.arange(self.check_ids.shape[0]), check_deg
        )

        # Variable-side order: permutation from check-sorted to var-sorted.
        self.to_var_order = np.lexsort((self.edge_check, self.edge_var))
        var_sorted = self.edge_var[self.to_var_order]
        self.var_ids, var_deg = np.unique(var_sorted, return_counts=True)
        self.var_starts = np.concatenate([[0], np.cumsum(var_deg[:-1])])
        #: per-edge (var order) index into the non-empty-var segments
        self.edge_var_segment = np.repeat(
            np.arange(self.var_ids.shape[0]), var_deg
        )
        #: variable id of each edge in var-sorted order
        self.edge_var_sorted = var_sorted

    def scatter_var_sums(self, per_var_values: np.ndarray) -> np.ndarray:
        """Expand per-(non-empty)-variable values to the full width.

        ``per_var_values`` has shape ``(..., len(var_ids))``; returns
        ``(..., n_vars)`` with zeros at isolated variables.
        """
        shape = per_var_values.shape[:-1] + (self.n_vars,)
        out = np.zeros(shape, dtype=per_var_values.dtype)
        out[..., self.var_ids] = per_var_values
        return out

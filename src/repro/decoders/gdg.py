"""Guided decimation guessing (GDG) — related-work baseline.

Gong, Cammerer & Renes (arXiv:2403.18901), discussed in the paper's
Sec. I, accelerate BP convergence by *decimation*: when BP stalls, the
least reliable bit is guessed and frozen to each of its two values,
forking the decoding state into a small tree of BP instances.  The
paper contrasts BP-SF with GDG because the decision-tree structure of
the guessing phase limits parallelism — level ``ℓ`` of the tree cannot
start before level ``ℓ-1`` finished.

This implementation forks on the most *oscillating* undecided bit
(matching the repository's oscillation statistics; the original paper
guesses from BP history averages, which agree with flip counts on
stalled bits) and freezes bits by saturating their prior LLR through
the per-shot-prior interface of :class:`~repro.decoders.bp.MinSumBP`.
All branches of one tree level decode as a single vectorised batch.

Accounting matches the paper's latency model: ``iterations`` sums
every branch (serial execution), ``parallel_iterations`` charges one
BP budget per *tree level*, since levels are sequential but branches
within a level are not.
"""

from __future__ import annotations

import time

import numpy as np

from repro.decoders.base import (
    BatchDecodeResult,
    DecodeResult,
    Decoder,
    distribute_batch_time,
)
from repro.decoders.bp import MinSumBP
from repro.problem import DecodingProblem

__all__ = ["GDGDecoder"]


class GDGDecoder(Decoder):
    """BP with guided decimation guessing.

    Parameters
    ----------
    problem:
        The decoding problem.
    max_iter:
        Iteration budget of the initial BP attempt *and* of each
        decimated branch.
    max_depth:
        Maximum number of guessing levels (bits frozen per branch).
    beam_width:
        Maximum number of simultaneously open branches; the least
        promising branches (largest residual-syndrome weight) are
        pruned first.
    saturation:
        Magnitude of the frozen prior LLR (defaults to the BP clamp).
    kwargs:
        Forwarded to the underlying :class:`MinSumBP`.
    """

    def __init__(
        self,
        problem: DecodingProblem,
        *,
        max_iter: int = 60,
        max_depth: int = 4,
        beam_width: int = 8,
        saturation: float | None = None,
        **kwargs,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        if beam_width < 2:
            raise ValueError("beam_width must be at least 2")
        self.problem = problem
        self.max_depth = int(max_depth)
        self.beam_width = int(beam_width)
        kwargs.setdefault("track_oscillations", True)
        self.bp = MinSumBP(problem, max_iter=max_iter, **kwargs)
        self.saturation = (
            self.bp.clamp if saturation is None else float(saturation)
        )
        self.name = f"GDG{max_iter}d{max_depth}w{beam_width}"

    # -- public API -----------------------------------------------------

    def decode(self, syndrome) -> DecodeResult:
        start = time.perf_counter()
        result = self.decode_many(np.atleast_2d(syndrome)).to_results()[0]
        result.time_seconds = time.perf_counter() - start
        return result

    def decode_many(self, syndromes) -> BatchDecodeResult:
        """Batch decode: initial BP vectorised, guessing per failed shot.

        The decision tree of the guessing phase is sequential by level
        (the paper's Sec. I argument against GDG), so the fallback runs
        per shot; branches within a level still decode as one batch.
        """
        start = time.perf_counter()
        syndromes = np.atleast_2d(np.asarray(syndromes, dtype=np.uint8))
        batch = syndromes.shape[0]
        initial = self.bp.decode_many(syndromes)
        rescued = {
            int(i): self._guess(syndromes[i], initial[int(i)])
            for i in np.nonzero(~initial.converged)[0]
        }
        elapsed = time.perf_counter() - start
        if not rescued:
            result = initial
            distribute_batch_time(result, elapsed)
            return result
        result = BatchDecodeResult.from_results(
            [
                rescued[i] if i in rescued else initial[i]
                for i in range(batch)
            ]
        )
        distribute_batch_time(result, elapsed)
        return result

    # -- internals -------------------------------------------------------

    def _guess(self, syndrome, initial: DecodeResult) -> DecodeResult:
        """Beam search over decimated BP branches."""
        base_prior = self.bp._prior_llr.astype(np.float64)
        budget = self.bp.max_iter
        init_iters = int(initial.iterations)

        # A branch is (prior vector, frozen bit set); level 0 forks the
        # failed initial run on its most oscillating bit.
        branch_priors = [base_prior]
        frozen: list[set[int]] = [set()]
        branch_flips = [np.asarray(initial.flip_counts)]
        serial = init_iters
        parallel = init_iters
        branches_tried = 0

        for depth in range(1, self.max_depth + 1):
            next_priors: list[np.ndarray] = []
            next_frozen: list[set[int]] = []
            for prior, fixed, flips in zip(
                branch_priors, frozen, branch_flips
            ):
                bit = self._pick_bit(flips, fixed)
                if bit is None:
                    continue
                for value in (0, 1):
                    forked = prior.copy()
                    forked[bit] = (
                        self.saturation if value == 0 else -self.saturation
                    )
                    next_priors.append(forked)
                    next_frozen.append(fixed | {bit})
            if not next_priors:
                break

            priors = np.stack(next_priors)
            synd = np.broadcast_to(
                syndrome, (priors.shape[0], syndrome.shape[0])
            )
            batch = self.bp.decode_many(synd, prior_llr=priors)
            branches_tried += len(next_priors)

            if batch.converged.any():
                # Serial execution stops at the first success in branch
                # order; parallel execution finishes with the fastest
                # converged branch of this (final) level.
                winner = int(np.argmax(batch.converged))
                serial += int(
                    np.where(
                        batch.converged[:winner],
                        batch.iterations[:winner],
                        budget,
                    ).sum()
                ) + int(batch.iterations[winner])
                parallel += int(batch.iterations[batch.converged].min())
                return DecodeResult(
                    error=batch.errors[winner].copy(),
                    converged=True,
                    iterations=serial,
                    # Levels are sequential; branches within one are not.
                    parallel_iterations=parallel,
                    initial_iterations=init_iters,
                    stage="post",
                    trials_attempted=branches_tried,
                    winning_trial=winner,
                    marginals=initial.marginals,
                    flip_counts=initial.flip_counts,
                )
            serial += budget * len(next_priors)
            parallel += budget

            # Prune to the beam: fewest unsatisfied checks first.
            residual = np.abs(
                self.problem.syndromes(batch.errors)
                ^ np.asarray(syndrome, dtype=np.uint8)[None, :]
            ).sum(axis=1)
            keep = np.argsort(residual, kind="stable")[: self.beam_width]
            branch_priors = [next_priors[i] for i in keep]
            frozen = [next_frozen[i] for i in keep]
            branch_flips = [np.asarray(batch.flip_counts[i]) for i in keep]

        return DecodeResult(
            error=initial.error,
            converged=False,
            iterations=serial,
            parallel_iterations=parallel,
            initial_iterations=init_iters,
            stage="failed",
            trials_attempted=branches_tried,
            marginals=initial.marginals,
            flip_counts=initial.flip_counts,
        )

    def _pick_bit(self, flips: np.ndarray, fixed: set[int]) -> int | None:
        """Most oscillating bit not yet frozen on this branch."""
        if flips is None:
            return None
        order = np.argsort(-flips, kind="stable")
        for bit in order:
            if int(bit) not in fixed:
                # A bit that never oscillated carries no guess signal.
                if flips[bit] <= 0 and fixed:
                    return None
                return int(bit)
        return None

"""Async decode service: batching front door over the decoder stack.

The service layer turns the repository's decoders into a server shape:
many concurrent clients stream syndromes in, a batcher coalesces them
into ``decode_many`` calls across clients, a worker pool executes them
(in-process threads or engine-style decode processes), bounded-slot
backpressure keeps memory finite under overload, and live telemetry
speaks the same queueing vocabulary as the offline Sec. VI backlog
model (:mod:`repro.sim.streaming`).

Entry points: :class:`DecodeService` (+ :class:`ServiceConfig`) for the
server object, :class:`ServiceClient`/:func:`run_service_stream` for
the stream-replay harness, and ``python -m repro serve`` on the command
line.  The networked, multi-problem front end — TCP framing,
consistent-hash routing, priority lanes, deadlines — lives in
:mod:`repro.service.net` (``python -m repro serve-net``).
"""

from repro.service.batcher import (
    RequestBatcher,
    ServiceClosed,
    ServiceOverloadedError,
)
from repro.service.client import (
    ServiceClient,
    ServiceStreamResult,
    run_service_stream,
)
from repro.service.server import DecodeService, ServiceConfig
from repro.service.telemetry import ServiceSnapshot, ServiceTelemetry

__all__ = [
    "DecodeService",
    "RequestBatcher",
    "ServiceClient",
    "ServiceClosed",
    "ServiceConfig",
    "ServiceOverloadedError",
    "ServiceSnapshot",
    "ServiceStreamResult",
    "ServiceTelemetry",
    "run_service_stream",
]

"""Live queueing telemetry for the decode service.

The service exists to demonstrate the paper's backlog argument on a
*real* server, so its telemetry speaks the same language as the
offline queue model (:mod:`repro.sim.streaming`): per-request service
times, utilisation ``rho = mean service / arrival period``, the
backlog gauge (requests admitted but not yet answered), and response
percentiles.

:class:`ServiceTelemetry` is the mutable recorder the server feeds;
:meth:`ServiceTelemetry.snapshot` freezes it into a printable
:class:`ServiceSnapshot`, and :meth:`ServiceTelemetry.queue_model`
replays the recorded service times through
:func:`~repro.sim.streaming.simulate_stream` — so the live gauges and
the D/G/1 model can be cross-checked on identical data (the
acceptance test of the service layer).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.sim.streaming import StreamingReport, simulate_stream

__all__ = ["ServiceSnapshot", "ServiceTelemetry"]


@dataclass(frozen=True)
class ServiceSnapshot:
    """Frozen view of a service's counters and latency statistics.

    Times are seconds.  ``utilisation`` is ``nan`` until the telemetry
    knows an arrival period and has completed at least one request.
    """

    submitted: int
    completed: int
    failed: int
    rejected: int
    pending: int
    peak_pending: int
    batches: int
    mean_batch: float
    utilisation: float
    mean_service: float
    p50_response: float
    p99_response: float

    @property
    def stable(self) -> bool:
        """Terhal's criterion on the live gauge: ``rho < 1``."""
        return bool(self.utilisation < 1.0)

    def __str__(self) -> str:
        rho = (
            f"rho={self.utilisation:.2f} "
            f"({'stable' if self.stable else 'diverging'}), "
            if np.isfinite(self.utilisation) else ""
        )
        failed = f", {self.failed} failed" if self.failed else ""
        return (
            f"service: {rho}{self.completed}/{self.submitted} answered "
            f"({self.rejected} rejected{failed}), backlog {self.pending} "
            f"(peak {self.peak_pending}), {self.batches} batches "
            f"(mean {self.mean_batch:.1f} shots), "
            f"p99 response {self.p99_response * 1e3:.2f} ms"
        )


class ServiceTelemetry:
    """Mutable recorder of the service's queueing behaviour.

    The server stamps every request at admission
    (:meth:`request_admitted`), counts rejections
    (:meth:`request_rejected`), and reports each executed batch once
    (:meth:`batch_done`) with the requests' arrival stamps, the
    per-request service-time shares and the batch's completion stamp.

    ``period`` is the arrival budget (seconds between syndromes, the
    paper's ``rounds x round_time``); it anchors ``utilisation`` so the
    live gauge and :func:`~repro.sim.streaming.simulate_stream` agree
    by construction on the same service times.  ``clock`` is injectable
    for deterministic tests.
    """

    def __init__(self, period: float | None = None, *,
                 clock=time.perf_counter):
        if period is not None and period <= 0:
            raise ValueError("period must be positive")
        self.period = period
        self.clock = clock
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.rejected = 0
        self.batches = 0
        self.peak_pending = 0
        self._arrivals: list[float] = []
        self._finishes: list[float] = []
        self._service: list[float] = []
        self._batch_sizes: list[int] = []

    # -- recording hooks (called by the server) -------------------------

    def request_admitted(self) -> float:
        """Stamp one admitted request; returns its arrival time."""
        self.submitted += 1
        self.peak_pending = max(self.peak_pending, self.pending)
        return self.clock()

    def request_rejected(self) -> None:
        """Count one request refused by backpressure."""
        self.rejected += 1

    def batch_done(
        self, arrivals, service, finish: float
    ) -> None:
        """Record one executed batch.

        ``arrivals`` are the admission stamps of the batch's requests,
        ``service`` their per-request service-time shares (the batch's
        decode wall time attributed per shot), ``finish`` the stamp at
        which their responses became available.
        """
        arrivals = list(arrivals)
        service = list(service)
        if len(arrivals) != len(service):
            raise ValueError("arrivals and service lengths differ")
        self.batches += 1
        self.completed += len(arrivals)
        self._batch_sizes.append(len(arrivals))
        self._arrivals.extend(arrivals)
        self._service.extend(service)
        self._finishes.extend([finish] * len(arrivals))

    def batch_failed(self, n_requests: int) -> None:
        """Record one batch whose decode raised.

        Its requests leave the backlog as *failed*, without fabricating
        zero-length service samples — the latency statistics and the
        :meth:`queue_model` replay describe decoded work only.
        """
        self.failed += n_requests

    # -- gauges and statistics ------------------------------------------

    @property
    def pending(self) -> int:
        """Backlog gauge: admitted requests not yet answered."""
        return self.submitted - self.completed - self.failed

    @property
    def service_times(self) -> np.ndarray:
        """Per-request service-time shares, in completion order."""
        return np.asarray(self._service, dtype=np.float64)

    @property
    def responses(self) -> np.ndarray:
        """Per-request arrival-to-answer times, in completion order."""
        return (
            np.asarray(self._finishes, dtype=np.float64)
            - np.asarray(self._arrivals, dtype=np.float64)
        )

    @property
    def utilisation(self) -> float:
        """``mean service / period`` — the same formula as the offline
        queue model, so the two agree exactly on shared data."""
        if self.period is None or not self._service:
            return float("nan")
        return float(self.service_times.mean() / self.period)

    def snapshot(self) -> ServiceSnapshot:
        """Freeze the current counters into a printable record."""
        responses = self.responses
        service = self.service_times
        return ServiceSnapshot(
            submitted=self.submitted,
            completed=self.completed,
            failed=self.failed,
            rejected=self.rejected,
            pending=self.pending,
            peak_pending=self.peak_pending,
            batches=self.batches,
            mean_batch=(
                float(np.mean(self._batch_sizes)) if self._batch_sizes
                else 0.0
            ),
            utilisation=self.utilisation,
            mean_service=float(service.mean()) if service.size else 0.0,
            p50_response=(
                float(np.percentile(responses, 50)) if responses.size
                else 0.0
            ),
            p99_response=(
                float(np.percentile(responses, 99)) if responses.size
                else 0.0
            ),
        )

    def dem_cache_stats(self) -> dict:
        """Hits/misses/evictions of the shared DEM compilation caches.

        Long-lived services rebuild problems as pools churn; this
        surfaces :func:`repro.circuits.cache_stats` next to the
        queueing gauges so operators can see whether those rebuilds
        hit the structural cache.
        """
        from repro.circuits import cache_stats

        return cache_stats()

    def queue_model(self, period: float | None = None) -> StreamingReport:
        """Replay the recorded service times through the D/G/1 model.

        Returns :func:`~repro.sim.streaming.simulate_stream` on exactly
        the service times the live server measured, at ``period`` (or
        the telemetry's own).  ``StreamingReport.utilisation`` equals
        :attr:`utilisation` by construction — the acceptance check that
        the server's gauges and the Sec. VI offline model agree.
        """
        period = self.period if period is None else period
        if period is None:
            raise ValueError(
                "queue_model needs an arrival period — construct the "
                "telemetry with one or pass it explicitly"
            )
        return simulate_stream(self.service_times, period)

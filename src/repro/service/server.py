"""Asyncio decode server: cross-client batching over a worker pool.

The missing half of the paper's backlog argument (Sec. VI): syndromes
arrive as a *stream* from many concurrent clients, and the decoder has
to answer inside the syndrome-extraction budget or the queue diverges.
:class:`DecodeService` is that front door:

* clients ``await service.submit(syndrome)`` — any number concurrently;
* a :class:`~repro.service.batcher.RequestBatcher` coalesces requests
  across clients into ``decode_many`` batches (flush on ``max_batch``
  or a deadline derived from the syndrome budget), with bounded-slot
  backpressure;
* batches execute on a worker pool — in-process by default, or the
  same picklable decoder-factory machinery the sharded experiment
  engine uses (:func:`repro.sim.engine.resolve_decoder`) for
  ``n_workers`` decode processes;
* :class:`~repro.service.telemetry.ServiceTelemetry` records per-request
  service times, the backlog gauge and response percentiles, and can
  replay itself through the offline D/G/1 model for cross-checking.

Batching and bit-reproducibility: deterministic decoders (everything in
the registry except the ``sampled``/seeded families) produce per-shot
results independent of batch composition, so a service response is
bit-identical to an offline ``decode_many`` over the same syndromes.
Sampling decoders consume their RNG in batch order and therefore
depend on how requests happened to coalesce — the same caveat as any
shared-stream decoder, documented rather than hidden.
"""

from __future__ import annotations

import asyncio
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.decoders.base import BatchDecodeResult, DecodeResult, \
    distribute_batch_time
from repro.problem import DecodingProblem
from repro.service.batcher import RequestBatcher, ServiceClosed
from repro.service.telemetry import ServiceTelemetry
from repro.sim.engine import _mp_context, resolve_decoder

__all__ = ["DecodeService", "ServiceConfig"]

# Fallback flush deadline when no arrival period anchors one (seconds).
DEFAULT_FLUSH_LATENCY = 0.002


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of one :class:`DecodeService`.

    Attributes
    ----------
    max_batch:
        Largest cross-client batch handed to one ``decode_many`` call.
    flush_latency:
        Seconds the batcher may hold the oldest queued request while
        coalescing.  ``None`` derives it from ``period`` (half the
        arrival budget — answering within the budget needs the other
        half for the decode itself) or falls back to 2 ms.
    max_pending:
        Bound on admitted-but-unanswered requests (queued + in flight);
        the backpressure limit.
    n_workers:
        ``0`` (default) decodes in-process on a single executor thread
        — no pickling, any decoder instance works.  ``>= 1`` spins up
        that many decode *processes*; the decoder spec must then be
        picklable (registry name, factory, or picklable instance), as
        in the experiment engine.
    mp_context:
        Multiprocessing start method for process workers (engine
        semantics: default fork where available).
    period:
        Arrival budget in seconds between syndromes (the paper's
        ``rounds x round_time``); anchors telemetry utilisation and the
        default flush deadline.  ``None`` leaves utilisation undefined.
    """

    max_batch: int = 32
    flush_latency: float | None = None
    max_pending: int = 1024
    n_workers: int = 0
    mp_context: str | None = None
    period: float | None = None

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError("max_batch must be positive")
        if self.flush_latency is not None and self.flush_latency < 0:
            raise ValueError("flush_latency must be non-negative")
        if self.max_pending < 1:
            raise ValueError("max_pending must be positive")
        if self.n_workers < 0:
            raise ValueError("n_workers must be non-negative")
        if self.period is not None and self.period <= 0:
            raise ValueError("period must be positive")

    @property
    def effective_flush_latency(self) -> float:
        if self.flush_latency is not None:
            return self.flush_latency
        if self.period is not None:
            return self.period / 2
        return DEFAULT_FLUSH_LATENCY


@dataclass
class _Request:
    syndrome: np.ndarray
    arrival: float
    future: asyncio.Future


# -- process-worker plumbing (engine-style module-level state) ------------

_SERVICE_PROBLEM: DecodingProblem | None = None
_SERVICE_DECODER = None


def _init_service_worker(problem: DecodingProblem, spec) -> None:
    """Process-pool initializer: materialise the decoder once."""
    global _SERVICE_PROBLEM, _SERVICE_DECODER
    _SERVICE_PROBLEM = problem
    _SERVICE_DECODER = resolve_decoder(spec, problem)


def _service_worker_decode(syndromes: np.ndarray) -> BatchDecodeResult:
    """Decode one batch in a worker process; times the decode locally."""
    start = time.perf_counter()
    result = _SERVICE_DECODER.decode_many(syndromes)
    distribute_batch_time(result, time.perf_counter() - start)
    return result


class DecodeService:
    """Async decode server over one ``(problem, decoder)`` pair.

    Lifecycle::

        async with DecodeService(problem, "bpsf", config) as service:
            result = await service.submit(syndrome)

    or explicit ``await service.start()`` / ``await service.stop()``.
    ``submit`` returns the request's
    :class:`~repro.decoders.base.DecodeResult`; a full service raises
    :class:`~repro.service.batcher.ServiceOverloadedError` when called
    with ``wait=False`` and otherwise suspends the caller (bounded
    backpressure either way).

    ``on_progress(done, total)`` — the engine's shard-progress
    signature — is invoked after every executed batch with
    ``(completed, submitted)`` request counts.
    """

    def __init__(
        self,
        problem: DecodingProblem,
        decoder,
        config: ServiceConfig | None = None,
        *,
        on_progress=None,
        executor=None,
    ):
        self.problem = problem
        self.config = config or ServiceConfig()
        self.telemetry = ServiceTelemetry(self.config.period)
        self._decoder_spec = decoder
        self._on_progress = on_progress
        self._batcher: RequestBatcher | None = None
        # An externally owned executor lets several services share one
        # capacity unit (the networked front end's pool nodes); the
        # service then never shuts it down.  Only meaningful for
        # in-process decoding.
        if executor is not None and self.config.n_workers >= 1:
            raise ValueError(
                "a shared executor requires n_workers=0 (in-process "
                "decoding); process pools are owned per service"
            )
        self._external_executor = executor
        self._executor = None
        self._decoder = None
        self._serve_task: asyncio.Task | None = None
        self._executions: set[asyncio.Task] = set()
        self._worker_slots: asyncio.Semaphore | None = None
        self._idle = asyncio.Event()
        self._idle.set()
        if self.config.n_workers >= 1:
            # Fail before any pool spins up, with the engine's guidance.
            try:
                pickle.dumps((problem, decoder))
            except Exception as exc:
                raise TypeError(
                    "decoder spec or problem is not picklable for "
                    "worker processes — pass a registry name or a "
                    "module-level factory instead (lambdas do not "
                    f"pickle), or use n_workers=0: {exc}"
                ) from exc

    # -- lifecycle -------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._serve_task is not None

    async def start(self) -> "DecodeService":
        """Spin up the executor and the batch-serving loop."""
        if self.started:
            raise RuntimeError("service already started")
        config = self.config
        if config.n_workers >= 1:
            self._executor = ProcessPoolExecutor(
                max_workers=config.n_workers,
                mp_context=_mp_context(config.mp_context),
                initializer=_init_service_worker,
                initargs=(self.problem, self._decoder_spec),
            )
            self._decode_fn = _service_worker_decode
            worker_slots = config.n_workers
        else:
            # In-process: an executor thread keeps the event loop free
            # while the (single, not-thread-safe) decoder runs.  The
            # worker-slot semaphore stays at 1 either way — this
            # service's decoder instance must never run concurrently
            # with itself, even on a shared multi-thread executor.
            self._decoder = resolve_decoder(self._decoder_spec, self.problem)
            if self._external_executor is not None:
                self._executor = self._external_executor
            else:
                self._executor = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="repro-decode"
                )
            self._decode_fn = self._decode_inproc
            worker_slots = 1
        self._worker_slots = asyncio.Semaphore(worker_slots)
        self._batcher = RequestBatcher(
            max_batch=config.max_batch,
            flush_latency=config.effective_flush_latency,
            max_pending=config.max_pending,
        )
        self._serve_task = asyncio.create_task(self._serve())
        return self

    async def stop(self) -> None:
        """Drain queued work, then shut the loop and executor down."""
        if not self.started:
            return
        self._batcher.close()
        await self._serve_task
        if self._executions:
            await asyncio.gather(*self._executions, return_exceptions=True)
        self._serve_task = None
        if self._executor is not self._external_executor:
            self._executor.shutdown(wait=True)
        self._executor = None

    async def __aenter__(self) -> "DecodeService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- request path ----------------------------------------------------

    async def enqueue(self, syndrome, *, wait: bool = True):
        """Admit one syndrome; returns a future of its decode result.

        Suspends on a full service (``wait=True``) or raises
        :class:`~repro.service.batcher.ServiceOverloadedError`
        (``wait=False``) — either way, *admission itself* is where
        backpressure bites, so a submission loop that awaits
        ``enqueue`` is throttled to the server's pace while the
        response is still collected asynchronously.  This is the
        primitive behind the stream harness's open-loop clients.
        """
        if not self.started:
            raise ServiceClosed("service is not started")
        syndrome = np.asarray(syndrome, dtype=np.uint8).reshape(-1)
        if syndrome.shape[0] != self.problem.n_checks:
            raise ValueError(
                f"syndrome has {syndrome.shape[0]} bits, problem "
                f"{self.problem.name!r} has {self.problem.n_checks} checks"
            )
        request = _Request(
            syndrome=syndrome,
            arrival=0.0,
            future=asyncio.get_running_loop().create_future(),
        )
        try:
            await self._batcher.put(request, wait=wait)
        except ServiceClosed:
            raise
        except Exception:
            self.telemetry.request_rejected()
            raise
        request.arrival = self.telemetry.request_admitted()
        self._idle.clear()
        return request.future

    async def submit(self, syndrome, *, wait: bool = True) -> DecodeResult:
        """Decode one syndrome through the batched pipeline.

        ``await``-until-answered convenience over :meth:`enqueue` —
        admission backpressure semantics are identical.
        """
        return await (await self.enqueue(syndrome, wait=wait))

    async def drain(self) -> None:
        """Wait until every admitted request has been answered."""
        await self._idle.wait()

    # -- live tuning -----------------------------------------------------

    @property
    def max_batch(self) -> int:
        """The batcher's current flush size (live-tunable)."""
        if self._batcher is not None:
            return self._batcher.max_batch
        return self.config.max_batch

    def set_max_batch(self, max_batch: int) -> None:
        """Retarget the batcher's flush size on a running service.

        The batcher reads ``max_batch`` afresh for every coalescing
        decision, so the change applies from the next batch on — this
        is the knob behind the networked front end's backlog-adaptive
        batching.
        """
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        if self._batcher is not None:
            self._batcher.max_batch = max_batch

    # -- batch execution -------------------------------------------------

    async def _serve(self) -> None:
        while True:
            # Hold a worker slot *before* pulling the next batch: while
            # every worker is busy, requests keep accumulating in the
            # batcher and the next batch comes out bigger — batch sizes
            # grow exactly when the service is saturated.
            await self._worker_slots.acquire()
            batch = await self._batcher.next_batch()
            if batch is None:
                self._worker_slots.release()
                break
            task = asyncio.create_task(self._execute(batch))
            self._executions.add(task)
            task.add_done_callback(self._executions.discard)

    async def _execute(self, requests: list[_Request]) -> None:
        loop = asyncio.get_running_loop()
        try:
            syndromes = np.stack([r.syndrome for r in requests])
            result = await loop.run_in_executor(
                self._executor, self._decode_fn, syndromes
            )
            finish = self.telemetry.clock()
            self.telemetry.batch_done(
                [r.arrival for r in requests],
                result.time_seconds,
                finish,
            )
            for i, request in enumerate(requests):
                if not request.future.done():
                    request.future.set_result(result[i])
        except Exception as exc:
            # One failed batch fails its own requests, not the service
            # (and not the latency statistics: no fake service samples).
            self.telemetry.batch_failed(len(requests))
            for request in requests:
                if not request.future.done():
                    request.future.set_exception(exc)
        finally:
            self._batcher.release(len(requests))
            self._worker_slots.release()
            if self.telemetry.pending == 0:
                self._idle.set()
            if self._on_progress is not None:
                self._on_progress(
                    self.telemetry.completed, self.telemetry.submitted
                )

    def _decode_inproc(self, syndromes: np.ndarray) -> BatchDecodeResult:
        start = time.perf_counter()
        result = self._decoder.decode_many(syndromes)
        distribute_batch_time(result, time.perf_counter() - start)
        return result

"""Asyncio client of the networked decode service.

:class:`NetClient` multiplexes any number of concurrent requests over
one TCP connection: ``enqueue`` assigns a connection-unique request
id, writes the frame and returns a future; a background reader task
matches responses back by id.  ``decode`` is the await-until-answered
convenience.  A protocol ``ERROR`` frame from the server — or a torn
connection — fails every outstanding future with
:class:`NetConnectionError` and closes the client; a closed client
raises on further use instead of hanging.
"""

from __future__ import annotations

import asyncio
import itertools

import numpy as np

from repro.service.net.protocol import (
    ErrorFrame,
    ProtocolError,
    Request,
    Response,
    encode_request,
    parse_payload,
    read_frame,
)

__all__ = ["NetClient", "NetConnectionError"]


class NetConnectionError(ConnectionError):
    """The connection to the decode server failed or was refused."""


class NetClient:
    """One connection to a :class:`~repro.service.net.NetDecodeServer`.

    Construct with :meth:`connect`; use as an async context manager or
    call :meth:`close` explicitly.  All methods must run on the event
    loop that created the client.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ):
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count()
        self._pending: dict[int, asyncio.Future] = {}
        self._write_lock = asyncio.Lock()
        self._closed = False
        self._read_task = asyncio.create_task(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "NetClient":
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except OSError as exc:
            raise NetConnectionError(
                f"cannot connect to decode server at {host}:{port}: {exc}"
            ) from exc
        return cls(reader, writer)

    async def __aenter__(self) -> "NetClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- request path ----------------------------------------------------

    async def enqueue(
        self,
        problem_key: str,
        syndrome,
        *,
        priority: int = 1,
        deadline: float = 0.0,
    ) -> asyncio.Future:
        """Send one request; returns a future of its :class:`Response`.

        ``priority`` 0 is the logical-measurement lane, 1 the idle
        lane; ``deadline`` is a relative budget in seconds (0 = none)
        judged on the *server's* clock from the moment of admission.
        """
        if self._closed:
            raise NetConnectionError("client is closed")
        request_id = next(self._ids)
        frame = encode_request(Request(
            request_id=request_id,
            problem_key=problem_key,
            syndrome=np.asarray(syndrome, dtype=np.uint8).reshape(-1),
            priority=priority,
            deadline=deadline,
        ))
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            async with self._write_lock:
                self._writer.write(frame)
                await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            self._pending.pop(request_id, None)
            raise NetConnectionError(
                f"connection lost while sending request: {exc}"
            ) from exc
        return future

    async def decode(
        self,
        problem_key: str,
        syndrome,
        *,
        priority: int = 1,
        deadline: float = 0.0,
    ) -> Response:
        """Send one request and await its response."""
        return await (await self.enqueue(
            problem_key, syndrome, priority=priority, deadline=deadline
        ))

    async def decode_many(
        self,
        problem_key: str,
        syndromes,
        *,
        priority: int = 1,
        deadline: float = 0.0,
    ) -> list[Response]:
        """Fire one request per syndrome concurrently; await all.

        Responses come back in syndrome order regardless of the order
        the server answered in (the request-id multiplexing contract).
        """
        futures = [
            await self.enqueue(
                problem_key, syndrome, priority=priority, deadline=deadline
            )
            for syndrome in np.atleast_2d(np.asarray(syndromes))
        ]
        return list(await asyncio.gather(*futures))

    # -- response plumbing -----------------------------------------------

    async def _read_loop(self) -> None:
        failure: Exception | None = None
        try:
            while True:
                payload = await read_frame(self._reader)
                if payload is None:
                    failure = NetConnectionError(
                        "server closed the connection"
                    )
                    return
                message = parse_payload(payload)
                if isinstance(message, ErrorFrame):
                    failure = NetConnectionError(
                        f"protocol error from server: {message.detail}"
                    )
                    return
                if not isinstance(message, Response):
                    raise ProtocolError(
                        f"client expects RESPONSE frames, got "
                        f"{type(message).__name__}"
                    )
                future = self._pending.pop(message.request_id, None)
                if future is not None and not future.done():
                    future.set_result(message)
        except ProtocolError as exc:
            failure = NetConnectionError(f"malformed server frame: {exc}")
        except (ConnectionError, OSError) as exc:
            failure = NetConnectionError(f"connection lost: {exc}")
        except asyncio.CancelledError:
            failure = NetConnectionError("client closed")
            raise
        finally:
            self._fail_pending(
                failure or NetConnectionError("connection closed")
            )

    def _fail_pending(self, exc: Exception) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    async def close(self) -> None:
        """Close the connection; outstanding futures fail cleanly."""
        if self._closed:
            return
        self._closed = True
        self._read_task.cancel()
        try:
            await self._read_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

"""Consistent-hash ring with virtual nodes for problem-key routing.

The networked server routes every request's *problem key* to one of a
set of pool nodes.  A plain ``hash(key) % n`` would reshuffle almost
every key whenever a node is added or removed; the classic
consistent-hash construction bounds that movement: each node owns
``vnodes`` pseudo-random points on a 64-bit circle, a key belongs to
the first node point clockwise of the key's own point, and adding or
removing a node only moves the keys in the arcs that node's points
cover (~``1/n`` of the keyspace).

Two repository contracts, asserted by ``tests/service/test_ring.py``:

* **determinism** — placement must be identical across processes,
  machines and ``PYTHONHASHSEED`` values, because routing decides
  which pool decodes a syndrome and operators reason about placement
  offline.  All hashing is therefore SHA-256 over explicit UTF-8
  tokens, never Python's seeded ``hash()``;
* **minimal movement** — after ``remove(node)``, every key that was
  *not* on ``node`` stays where it was; after ``add(node)``, keys only
  move *to* the new node.
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["HashRing"]

DEFAULT_VNODES = 64


def _point(token: str) -> int:
    """Deterministic 64-bit ring coordinate of a token."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring mapping string keys to named nodes.

    ``vnodes`` virtual points per node smooth the arc lengths: with
    tens of points per node the largest node's share concentrates
    toward the mean instead of the factor-of-several spread single
    points produce.
    """

    def __init__(self, nodes=(), *, vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError("vnodes must be positive")
        self.vnodes = vnodes
        # Sorted, parallel arrays of (point, node); ties broken by node
        # name so even a hash collision between two nodes' points is
        # deterministic.
        self._points: list[tuple[int, str]] = []
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    # -- membership ------------------------------------------------------

    def add(self, node: str) -> None:
        """Add a node (and its virtual points) to the ring."""
        if not node:
            raise ValueError("node name must be non-empty")
        if node in self._nodes:
            raise ValueError(f"node {node!r} is already on the ring")
        self._nodes.add(node)
        for i in range(self.vnodes):
            entry = (_point(f"{node}#{i}"), node)
            bisect.insort(self._points, entry)

    def remove(self, node: str) -> None:
        """Remove a node; its keys fall to their next-clockwise nodes."""
        if node not in self._nodes:
            raise KeyError(f"node {node!r} is not on the ring")
        self._nodes.remove(node)
        self._points = [p for p in self._points if p[1] != node]

    @property
    def nodes(self) -> tuple[str, ...]:
        """Member nodes, sorted by name."""
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    # -- routing ---------------------------------------------------------

    def lookup(self, key: str) -> str:
        """The node owning ``key``: first node point clockwise of it."""
        if not self._points:
            raise LookupError("cannot route on an empty ring")
        point = _point(key)
        # A key hashing exactly onto a node point belongs to the *next*
        # point (strictly-greater search), so key placement can never
        # depend on how a tie between a key token and a vnode token is
        # ordered.
        index = bisect.bisect_right(self._points, (point, "￿"))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def occupancy(self, keys) -> dict[str, list[str]]:
        """Map every node to the (sorted) keys it owns.

        Nodes owning nothing still appear with an empty list — ring
        telemetry wants to show idle pools, not hide them.
        """
        placement: dict[str, list[str]] = {n: [] for n in self.nodes}
        for key in keys:
            placement[self.lookup(key)].append(key)
        for bucket in placement.values():
            bucket.sort()
        return placement

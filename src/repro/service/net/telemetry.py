"""Telemetry of the networked front end: per-pool + ring-level views.

Each per-problem pool keeps the existing
:class:`~repro.service.telemetry.ServiceTelemetry` for its inner
decode service (service times, backlog, percentiles, queue-model
replay) and adds the *network*-layer counters that have no in-process
analogue: deadline drops, disconnect cancellations, lane load-sheds
and the per-lane admission split.  The server aggregates those into a
:class:`NetServerSnapshot` together with the consistent-hash ring's
occupancy, so one snapshot answers both "how is each pool doing?" and
"where did the keyspace land?".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.service.telemetry import ServiceSnapshot

__all__ = ["NetPoolTelemetry", "NetServerSnapshot", "PoolSnapshot"]


class NetPoolTelemetry:
    """Mutable network-layer counters of one per-problem pool."""

    def __init__(self) -> None:
        self.admitted = [0, 0]          # per priority lane
        self.expired = 0
        self.cancelled = 0
        self.overloaded = 0
        self.dispatched = 0
        self.peak_lane_depth = 0
        self.peak_max_batch = 0

    def lane_admitted(self, priority: int, depth: int) -> None:
        self.admitted[priority] += 1
        self.peak_lane_depth = max(self.peak_lane_depth, depth)

    def batch_adapted(self, max_batch: int) -> None:
        self.peak_max_batch = max(self.peak_max_batch, max_batch)


@dataclass(frozen=True)
class PoolSnapshot:
    """Frozen view of one pool: network counters + inner service."""

    problem_key: str
    node: str
    admitted_logical: int
    admitted_idle: int
    expired: int
    cancelled: int
    overloaded: int
    dispatched: int
    peak_lane_depth: int
    current_max_batch: int
    peak_max_batch: int
    service: ServiceSnapshot

    def __str__(self) -> str:
        return (
            f"pool {self.problem_key} @ {self.node}: "
            f"{self.admitted_logical}+{self.admitted_idle} admitted "
            f"(logical+idle), {self.dispatched} dispatched, "
            f"{self.expired} expired, {self.cancelled} cancelled, "
            f"{self.overloaded} shed, "
            f"max_batch {self.current_max_batch} "
            f"(peak {self.peak_max_batch}) | {self.service}"
        )


@dataclass(frozen=True)
class NetServerSnapshot:
    """Frozen view of the whole front end.

    ``ring_occupancy`` maps every pool node to the problem keys the
    ring assigns it — including nodes that own no key, which is what
    skewed-traffic dashboards need to see.
    """

    pools: dict[str, PoolSnapshot]
    ring_occupancy: dict[str, list[str]]
    connections: int
    protocol_errors: int
    bad_key: int = 0
    requests: int = 0
    responses: int = 0
    extra: dict = field(default_factory=dict)

    def __str__(self) -> str:
        lines = [
            f"net server: {self.requests} requests, "
            f"{self.responses} responses, {self.connections} "
            f"connections, {self.protocol_errors} protocol errors, "
            f"{self.bad_key} unknown keys"
        ]
        for node in sorted(self.ring_occupancy):
            keys = self.ring_occupancy[node]
            shown = ", ".join(keys) if keys else "-"
            lines.append(f"  ring {node}: {len(keys)} keys ({shown})")
        for key in sorted(self.pools):
            lines.append(f"  {self.pools[key]}")
        return "\n".join(lines)

"""Asyncio-streams TCP front end of the multi-problem decode service.

One :class:`NetDecodeServer` listens on a socket, speaks the
length-prefixed binary protocol (:mod:`~repro.service.net.protocol`),
and routes every request by problem key through the consistent-hash
:class:`~repro.service.net.router.Router` to a per-problem pool.  The
per-connection loop is deliberately boring:

* read a frame → parse → route → submit → answer, with responses
  multiplexed back over the same connection in completion order (a
  per-connection write lock keeps frames whole);
* **any** protocol violation — torn frame, garbage, oversized length,
  unknown version/type, duplicate outstanding request id — is answered
  with a protocol ``ERROR`` frame naming the defect and the connection
  is closed; the server itself keeps serving everyone else;
* a disconnect marks the connection's undispatched entries cancelled
  (the pools skip them) and abandons its in-flight decodes' responses
  — no decode result is ever written to a dead socket, and no task
  outlives the connection.

Request-level outcomes that are *not* protocol errors travel as
response statuses on a healthy connection: ``BAD_KEY`` (unserved
problem key), ``BAD_REQUEST`` (syndrome length mismatch),
``OVERLOADED`` (lane load-shed), ``EXPIRED`` (deadline drop) and
``FAILED`` (the decode raised).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

from repro.service.net.protocol import (
    MAX_FRAME,
    ProtocolError,
    Request,
    Response,
    Status,
    encode_error,
    encode_response,
    parse_payload,
    read_frame,
)
from repro.service.net.router import (
    PoolConfig,
    PoolOverloadedError,
    ProblemKey,
    Router,
    UnknownProblemKeyError,
    make_entry,
)
from repro.service.net.telemetry import NetServerSnapshot

__all__ = ["NetDecodeServer", "NetServerConfig"]


@dataclass(frozen=True)
class NetServerConfig:
    """Knobs of one networked decode server.

    ``n_pools``/``vnodes`` shape the consistent-hash ring;
    ``pool_threads`` sizes each node's shared decode executor; the
    remaining fields parameterise every per-problem pool (see
    :class:`~repro.service.net.router.PoolConfig`).
    """

    host: str = "127.0.0.1"
    port: int = 0
    n_pools: int = 2
    vnodes: int = 64
    pool_threads: int = 1
    max_batch: int = 32
    min_batch: int = 1
    adaptive_batch: bool = True
    flush_latency: float | None = None
    max_pending: int = 1024
    max_lane_depth: int = 1024
    period: float | None = None
    max_frame: int = MAX_FRAME

    def __post_init__(self):
        if self.n_pools < 1 or self.vnodes < 1 or self.pool_threads < 1:
            raise ValueError(
                "n_pools, vnodes and pool_threads must be positive"
            )
        if self.max_frame < 64:
            raise ValueError("max_frame is too small to carry any frame")

    def pool_config(self) -> PoolConfig:
        return PoolConfig(
            max_batch=self.max_batch,
            min_batch=self.min_batch,
            adaptive_batch=self.adaptive_batch,
            flush_latency=self.flush_latency,
            max_pending=self.max_pending,
            max_lane_depth=self.max_lane_depth,
            period=self.period,
        )


class _Connection:
    """Per-connection write lock + live-entry bookkeeping."""

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.lock = asyncio.Lock()
        self.entries: dict[int, object] = {}
        self.tasks: set[asyncio.Task] = set()

    async def send(self, frame: bytes) -> None:
        async with self.lock:
            self.writer.write(frame)
            await self.writer.drain()


class NetDecodeServer:
    """TCP front end amortising one server across many problems.

    ``problems`` is the served catalog: an iterable of canonical
    problem-key strings (or :class:`ProblemKey` instances), each built
    and validated against the registries at construction.  ``clock``
    is the injectable monotonic clock deadlines are judged on.

    Lifecycle mirrors :class:`~repro.service.server.DecodeService`::

        async with NetDecodeServer(keys, config) as server:
            ...  # server.port is the bound port
    """

    def __init__(
        self,
        problems,
        config: NetServerConfig | None = None,
        *,
        clock=time.monotonic,
        chaos=None,
    ):
        self.config = config or NetServerConfig()
        self.clock = clock
        catalog = {}
        for entry in problems:
            key = (
                entry if isinstance(entry, ProblemKey)
                else ProblemKey.parse(str(entry))
            )
            canonical = str(key)
            if canonical in catalog:
                raise ValueError(f"duplicate problem key {canonical}")
            catalog[canonical] = key.build()
        if not catalog:
            raise ValueError("the server needs at least one problem key")
        if chaos is None:
            from repro.devtools.chaos import injector_from_env

            chaos = injector_from_env()
        self.router = Router(
            catalog,
            n_pools=self.config.n_pools,
            vnodes=self.config.vnodes,
            pool_threads=self.config.pool_threads,
            pool_config=self.config.pool_config(),
            clock=clock,
            chaos=chaos,
        )
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[_Connection] = set()
        self._handlers: set[asyncio.Task] = set()
        self.connections_seen = 0
        self.protocol_errors = 0
        self.bad_key = 0
        self.requests = 0
        self.responses = 0

    # -- lifecycle -------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._server is not None

    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def problem_keys(self) -> tuple[str, ...]:
        return tuple(sorted(self.router.catalog))

    async def start(self) -> "NetDecodeServer":
        if self.started:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port
        )
        return self

    async def stop(self) -> None:
        if not self.started:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        # `wait_closed` does not await connection handlers on 3.11;
        # cancel them explicitly so no task outlives the server (each
        # handler's `finally` cancels its own response writers and
        # closes its transport).
        for task in list(self._handlers):
            task.cancel()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        await self.router.stop()

    async def drain(self) -> None:
        """Wait until every admitted request has been answered."""
        await self.router.drain()

    async def __aenter__(self) -> "NetDecodeServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- per-connection protocol loop ------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer)
        self._connections.add(conn)
        self.connections_seen += 1
        handler = asyncio.current_task()
        if handler is not None:
            self._handlers.add(handler)
            handler.add_done_callback(self._handlers.discard)
        try:
            await self._serve_connection(conn, reader)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            # Cancellation contract: undispatched entries are marked so
            # the pools skip them; response-writer tasks die with the
            # connection; in-flight decode results are discarded.
            for entry in conn.entries.values():
                entry.cancelled = True
            for task in list(conn.tasks):
                task.cancel()
            if conn.tasks:
                await asyncio.gather(*conn.tasks, return_exceptions=True)
            self._connections.discard(conn)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_connection(
        self, conn: _Connection, reader: asyncio.StreamReader
    ) -> None:
        while True:
            try:
                payload = await read_frame(
                    reader, max_frame=self.config.max_frame
                )
                if payload is None:
                    return
                message = parse_payload(payload)
                if not isinstance(message, Request):
                    raise ProtocolError(
                        f"server expects REQUEST frames, got "
                        f"{type(message).__name__}"
                    )
                if message.request_id in conn.entries:
                    raise ProtocolError(
                        f"request id {message.request_id} is already "
                        f"outstanding on this connection"
                    )
            except ProtocolError as exc:
                # Error loudly, then close: the stream is unframed now,
                # resynchronisation would be guesswork.
                self.protocol_errors += 1
                try:
                    await conn.send(encode_error(str(exc)))
                except (ConnectionError, OSError):
                    pass
                return
            await self._dispatch(conn, message)

    async def _dispatch(self, conn: _Connection, request: Request) -> None:
        self.requests += 1
        try:
            pool = await self.router.pool(request.problem_key)
        except UnknownProblemKeyError:
            self.bad_key += 1
            await self._respond(conn, Response(
                request_id=request.request_id,
                status=Status.BAD_KEY,
                detail=(
                    f"problem key {request.problem_key!r} is not served; "
                    f"one of {', '.join(self.problem_keys)}"
                ),
            ))
            return
        expected = pool.service.problem.n_checks
        if request.syndrome.shape[0] != expected:
            await self._respond(conn, Response(
                request_id=request.request_id,
                status=Status.BAD_REQUEST,
                detail=(
                    f"syndrome has {request.syndrome.shape[0]} bits, "
                    f"problem {request.problem_key} has {expected} checks"
                ),
            ))
            return
        entry = make_entry(
            request, clock=self.clock, loop=asyncio.get_running_loop()
        )
        try:
            pool.submit(entry)
        except PoolOverloadedError as exc:
            await self._respond(conn, Response(
                request_id=request.request_id,
                status=Status.OVERLOADED,
                detail=str(exc),
            ))
            return
        conn.entries[request.request_id] = entry
        task = asyncio.create_task(self._answer(conn, entry))
        conn.tasks.add(task)
        task.add_done_callback(conn.tasks.discard)

    async def _answer(self, conn: _Connection, entry) -> None:
        response = await entry.future
        conn.entries.pop(entry.request_id, None)
        try:
            await self._respond(conn, response)
        except (ConnectionError, OSError):
            pass

    async def _respond(self, conn: _Connection, response: Response) -> None:
        self.responses += 1
        await conn.send(encode_response(response))

    # -- telemetry -------------------------------------------------------

    def snapshot(self) -> NetServerSnapshot:
        from repro.circuits import cache_stats

        return NetServerSnapshot(
            pools={
                key: pool.snapshot()
                for key, pool in self.router.pools.items()
            },
            ring_occupancy=self.router.assignment(),
            connections=self.connections_seen,
            protocol_errors=self.protocol_errors,
            bad_key=self.bad_key,
            requests=self.requests,
            responses=self.responses,
            extra={"dem_cache": cache_stats()},
        )

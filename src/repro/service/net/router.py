"""Problem keys, per-problem worker pools, and ring-backed routing.

A *problem key* names one decode workload completely::

    <code>:<model>:p=<p>:r=<rounds>[:b=<basis>]:<decoder>:<backend>
    e.g.  surface_3:capacity:p=0.08:r=1:min_sum_bp:auto
          bb_144_12_12:circuit:p=0.003:r=12:b=x:bpsf:auto

The grammar, registry validation and build path are owned by the
canonical problem plane (:class:`repro.spec.ProblemSpec`);
:class:`ProblemKey` is its thin wire adapter — it keeps the wire-level
conventions (``p`` capped at the 0.5 useful-decoding bound, an
explicit ``r=`` field even under code capacity, ``b=`` omitted when it
equals the model default so pre-basis key strings hash to the same
pool) and delegates everything semantic via :meth:`ProblemKey.spec`.
Parsing is strict and building validates every component against the
code/decoder/backend registries, so a typo fails at server
construction (or with a ``BAD_KEY`` response), never inside a pool.

:class:`ProblemPool` wraps the existing single-problem stack — one
:class:`~repro.service.server.DecodeService` (cross-request batcher,
telemetry, backpressure) — and adds the network-layer semantics:

* two **priority lanes** in front of the service; the pump drains the
  logical-measurement lane (priority 0) completely before touching the
  idle-round lane (priority 1), so under saturation logical syndromes
  always dispatch first;
* **deadline drops** — an entry whose deadline passed while it queued
  is answered ``EXPIRED`` at pump time, *before* dispatch, and never
  costs a decode;
* **disconnect cancellation** — entries whose connection died are
  skipped (and counted) instead of decoded into the void;
* **adaptive batching** — before each dispatch the pump retargets the
  inner batcher's ``max_batch`` to the live backlog gauge, clamped to
  ``[min_batch, max_batch]``: an idle pool flushes small low-latency
  batches, a saturated one amortises aggressively;
* **chaos delays** — when ``REPRO_CHAOS`` schedules ``delay`` faults
  keyed on this pool's problem key, the pump claims them and awaits
  the sleep (kill/hang faults are worker-process territory and are
  ignored in-process — see
  :meth:`repro.devtools.chaos.ChaosInjector.claim_delay`).

:class:`Router` owns the consistent-hash ring over pool *nodes* (each
a shared decode executor) and lazily builds one :class:`ProblemPool`
per requested key on the node the ring assigns.  Node membership can
change at runtime (:meth:`Router.set_nodes`): only the pools whose
ring assignment moved are drained and rebuilt, everything else keeps
serving — the minimal-movement property, inherited from the ring.
"""

from __future__ import annotations

import asyncio
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.problem import DecodingProblem
from repro.service.net.protocol import Response, Status
from repro.spec import DecoderSpec, ProblemSpec, default_basis, split_wire_key
from repro.service.net.ring import HashRing
from repro.service.net.telemetry import NetPoolTelemetry, PoolSnapshot
from repro.service.server import DecodeService, ServiceConfig

__all__ = [
    "PoolConfig",
    "PoolOverloadedError",
    "ProblemKey",
    "ProblemPool",
    "Router",
    "UnknownProblemKeyError",
]

_MODELS = ("capacity", "circuit")


class UnknownProblemKeyError(KeyError):
    """The request names a problem key this server does not serve."""


class PoolOverloadedError(RuntimeError):
    """A pool's priority lane is full; the request was load-shed."""


@dataclass(frozen=True)
class ProblemKey:
    """Parsed identity of one decode workload (thin wire adapter).

    An explicit ``basis`` equal to the model default is normalised to
    ``None`` at construction, so ``surface_3:capacity:…`` and the
    spelled-out ``…:b=x:…`` form compare, hash and route identically.
    """

    code: str
    model: str
    p: float
    rounds: int
    decoder: str
    backend: str = "auto"
    basis: str | None = None

    def __post_init__(self):
        if self.model not in _MODELS:
            raise ValueError(
                f"model must be one of {_MODELS}, got {self.model!r}"
            )
        if not (0.0 < self.p < 0.5):
            raise ValueError(f"p must lie in (0, 0.5), got {self.p!r}")
        if self.rounds < 1:
            raise ValueError(f"rounds must be positive, got {self.rounds}")
        for part, what in (
            (self.code, "code"), (self.decoder, "decoder"),
            (self.backend, "backend"),
        ):
            if not part or ":" in part:
                raise ValueError(
                    f"{what} name must be non-empty and colon-free, "
                    f"got {part!r}"
                )
        if self.basis is not None:
            if self.basis not in ("x", "z"):
                raise ValueError(
                    f"basis must be one of ('x', 'z'), got {self.basis!r}"
                )
            if self.basis == default_basis(self.model):
                object.__setattr__(self, "basis", None)

    def __str__(self) -> str:
        b = f"b={self.basis}:" if self.basis is not None else ""
        return (
            f"{self.code}:{self.model}:p={self.p!r}:r={self.rounds}:{b}"
            f"{self.decoder}:{self.backend}"
        )

    @classmethod
    def parse(cls, key: str) -> "ProblemKey":
        """Parse the canonical colon-separated form (strict).

        Shares the problem plane's grammar (see
        :func:`repro.spec.split_wire_key`); the optional ``b=<basis>``
        field sits between ``r=`` and the decoder.
        """
        fields = split_wire_key(key)
        return cls(
            code=fields["code"], model=fields["model"], p=fields["p"],
            rounds=fields["rounds"], decoder=fields["decoder"],
            backend=fields["backend"], basis=fields["basis"],
        )

    def spec(self) -> ProblemSpec:
        """The canonical :class:`~repro.spec.ProblemSpec` this key names.

        The decoder is wrapped without eager registry validation so
        :meth:`build` reports unknown components in the historical
        decoder → code → backend order.
        """
        return ProblemSpec(
            code=self.code,
            model=self.model,
            p=self.p,
            rounds=self.rounds,
            basis=self.basis,
            decoder=DecoderSpec(label=self.decoder, registry=self.decoder),
            backend=self.backend,
        )

    def build(self):
        """Validate against the registries and build the workload.

        Returns ``(problem, decoder_factory)`` with the factory
        picklable (registry-name + backend), mirroring the CLI's
        ``_decode_workload`` semantics.  Raises :class:`ValueError`
        with a friendly message on any unknown component.
        """
        return self.spec().build()


@dataclass
class _LaneEntry:
    """One admitted network request while it waits for dispatch."""

    request_id: int
    syndrome: np.ndarray
    priority: int
    expires_at: float | None
    future: asyncio.Future
    cancelled: bool = False


@dataclass(frozen=True)
class PoolConfig:
    """Knobs of one per-problem pool (shared across pools in practice)."""

    max_batch: int = 32
    min_batch: int = 1
    adaptive_batch: bool = True
    flush_latency: float | None = None
    max_pending: int = 1024
    max_lane_depth: int = 1024
    period: float | None = None

    def __post_init__(self):
        if self.min_batch < 1 or self.max_batch < self.min_batch:
            raise ValueError(
                "need 1 <= min_batch <= max_batch, got "
                f"min_batch={self.min_batch}, max_batch={self.max_batch}"
            )
        if self.max_lane_depth < 1:
            raise ValueError("max_lane_depth must be positive")

    def service_config(self) -> ServiceConfig:
        return ServiceConfig(
            max_batch=self.max_batch,
            flush_latency=self.flush_latency,
            max_pending=self.max_pending,
            n_workers=0,
            period=self.period,
        )


class ProblemPool:
    """Priority lanes + deadline gate in front of one decode service."""

    def __init__(
        self,
        key: str,
        problem: DecodingProblem,
        decoder,
        *,
        node: str,
        executor,
        config: PoolConfig | None = None,
        clock,
        chaos=None,
    ):
        self.key = key
        self.node = node
        self.config = config or PoolConfig()
        self.telemetry = NetPoolTelemetry()
        self.service = DecodeService(
            problem, decoder, self.config.service_config(),
            executor=executor,
        )
        self._clock = clock
        self._chaos = chaos
        self._lanes: tuple[deque, deque] = (deque(), deque())
        self._available = asyncio.Semaphore(0)
        self._pump_task: asyncio.Task | None = None
        self._outstanding = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._closed = False

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> "ProblemPool":
        await self.service.start()
        self._pump_task = asyncio.create_task(self._pump())
        return self

    async def stop(self) -> None:
        """Refuse new work, fail queued entries, stop the service."""
        if self._closed:
            return
        self._closed = True
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
            self._pump_task = None
        for lane in self._lanes:
            while lane:
                entry = lane.popleft()
                self._settle(entry, Response(
                    request_id=entry.request_id,
                    status=Status.FAILED,
                    detail=f"pool {self.key} stopped",
                ))
        await self.service.stop()

    # -- admission -------------------------------------------------------

    @property
    def lane_depths(self) -> tuple[int, int]:
        return (len(self._lanes[0]), len(self._lanes[1]))

    @property
    def backlog(self) -> int:
        """Live backlog gauge: queued in lanes + inside the service."""
        return sum(self.lane_depths) + self.service.telemetry.pending

    def submit(self, entry: _LaneEntry) -> None:
        """Admit one entry into its priority lane (synchronous).

        Raises :class:`PoolOverloadedError` when the lane is at
        ``max_lane_depth`` — the network layer's load-shed bound; the
        inner service's own backpressure additionally throttles the
        pump, so total pool memory is bounded by
        ``2 * max_lane_depth + max_pending`` entries.
        """
        if self._closed:
            raise PoolOverloadedError(f"pool {self.key} is stopped")
        lane = self._lanes[entry.priority]
        if len(lane) >= self.config.max_lane_depth:
            self.telemetry.overloaded += 1
            raise PoolOverloadedError(
                f"pool {self.key} lane {entry.priority} is full "
                f"({self.config.max_lane_depth} queued)"
            )
        lane.append(entry)
        self._outstanding += 1
        self._idle.clear()
        self.telemetry.lane_admitted(entry.priority, sum(self.lane_depths))
        self._available.release()

    async def drain(self) -> None:
        """Wait until every admitted entry has been answered."""
        await self._idle.wait()

    # -- dispatch --------------------------------------------------------

    def _settle(self, entry: _LaneEntry, response: Response) -> None:
        if not entry.future.done():
            entry.future.set_result(response)
        self._outstanding -= 1
        if self._outstanding == 0:
            self._idle.set()

    def _adapt_batch(self) -> None:
        if not self.config.adaptive_batch:
            return
        target = max(
            self.config.min_batch, min(self.config.max_batch, self.backlog)
        )
        self.service.set_max_batch(target)
        self.telemetry.batch_adapted(target)

    async def _pump(self) -> None:
        while True:
            await self._available.acquire()
            lane = self._lanes[0] if self._lanes[0] else self._lanes[1]
            entry = lane.popleft()
            if entry.cancelled:
                self.telemetry.cancelled += 1
                self._settle(entry, Response(
                    request_id=entry.request_id,
                    status=Status.FAILED,
                    detail="request cancelled by client disconnect",
                ))
                continue
            if (
                entry.expires_at is not None
                and self._clock() >= entry.expires_at
            ):
                # The deadline-drop contract: expired syndromes are
                # answered EXPIRED *before* dispatch and never decode.
                self.telemetry.expired += 1
                self._settle(entry, Response(
                    request_id=entry.request_id,
                    status=Status.EXPIRED,
                    detail=f"deadline expired before dispatch "
                           f"(pool {self.key})",
                ))
                continue
            if self._chaos is not None:
                seconds = self._chaos.claim_delay(
                    self.key, self.telemetry.dispatched
                )
                if seconds is not None:
                    await asyncio.sleep(seconds)
            self._adapt_batch()
            self.telemetry.dispatched += 1
            # Blocking backpressure: a saturated inner service suspends
            # the pump here, which is exactly what lets the high lane
            # overtake — everything still in lanes stays reorderable.
            future = await self.service.enqueue(entry.syndrome)
            future.add_done_callback(
                lambda fut, entry=entry: self._deliver(entry, fut)
            )

    def _deliver(self, entry: _LaneEntry, fut: asyncio.Future) -> None:
        if fut.cancelled():
            response = Response(
                request_id=entry.request_id,
                status=Status.FAILED,
                detail="decode cancelled",
            )
        elif fut.exception() is not None:
            response = Response(
                request_id=entry.request_id,
                status=Status.FAILED,
                detail=f"decode failed: {fut.exception()}",
            )
        else:
            result = fut.result()
            response = Response(
                request_id=entry.request_id,
                status=Status.OK,
                error=np.asarray(result.error, dtype=np.uint8),
                converged=bool(result.converged),
                iterations=int(result.iterations),
                time_seconds=float(result.time_seconds),
            )
        self._settle(entry, response)

    # -- telemetry -------------------------------------------------------

    def snapshot(self) -> PoolSnapshot:
        t = self.telemetry
        return PoolSnapshot(
            problem_key=self.key,
            node=self.node,
            admitted_logical=t.admitted[0],
            admitted_idle=t.admitted[1],
            expired=t.expired,
            cancelled=t.cancelled,
            overloaded=t.overloaded,
            dispatched=t.dispatched,
            peak_lane_depth=t.peak_lane_depth,
            current_max_batch=self.service.max_batch,
            peak_max_batch=t.peak_max_batch,
            service=self.service.telemetry.snapshot(),
        )


class Router:
    """Consistent-hash routing of problem keys onto pool nodes.

    ``catalog`` maps canonical problem-key strings to prebuilt
    ``(problem, decoder_spec)`` pairs — the server validates and builds
    them once at construction, so routing never imports registries on
    the request path.  Each node owns one shared decode executor
    (``pool_threads`` threads); the pools the ring assigns to a node
    share it, making the node a real capacity unit rather than a
    label.
    """

    def __init__(
        self,
        catalog: dict,
        *,
        n_pools: int = 2,
        vnodes: int = 64,
        pool_threads: int = 1,
        pool_config: PoolConfig | None = None,
        clock,
        chaos=None,
    ):
        if n_pools < 1:
            raise ValueError("n_pools must be positive")
        if pool_threads < 1:
            raise ValueError("pool_threads must be positive")
        self.catalog = dict(catalog)
        self.pool_config = pool_config or PoolConfig()
        self.pool_threads = pool_threads
        self._clock = clock
        self._chaos = chaos
        self.ring = HashRing(
            (f"pool-{i}" for i in range(n_pools)), vnodes=vnodes
        )
        self._executors: dict[str, ThreadPoolExecutor] = {}
        self._pools: dict[str, ProblemPool] = {}
        self._lock = asyncio.Lock()
        self._closed = False

    # -- routing ---------------------------------------------------------

    def assignment(self) -> dict[str, list[str]]:
        """Ring occupancy over the full catalog (served or not yet)."""
        return self.ring.occupancy(self.catalog)

    def _node_executor(self, node: str) -> ThreadPoolExecutor:
        if node not in self._executors:
            self._executors[node] = ThreadPoolExecutor(
                max_workers=self.pool_threads,
                thread_name_prefix=f"repro-net-{node}",
            )
        return self._executors[node]

    async def pool(self, key: str) -> ProblemPool:
        """The (lazily started) pool serving ``key``.

        Raises :class:`UnknownProblemKeyError` for keys outside the
        catalog — the server answers those ``BAD_KEY`` instead of
        building arbitrary workloads on request.
        """
        if key not in self.catalog:
            raise UnknownProblemKeyError(key)
        pool = self._pools.get(key)
        if pool is not None:
            return pool
        async with self._lock:
            pool = self._pools.get(key)
            if pool is not None:
                return pool
            if self._closed:
                raise RuntimeError("router is stopped")
            node = self.ring.lookup(key)
            problem, decoder = self.catalog[key]
            pool = ProblemPool(
                key, problem, decoder,
                node=node,
                executor=self._node_executor(node),
                config=self.pool_config,
                clock=self._clock,
                chaos=self._chaos,
            )
            await pool.start()
            self._pools[key] = pool
            return pool

    @property
    def pools(self) -> dict[str, ProblemPool]:
        """Live pools by problem key (read-only view)."""
        return dict(self._pools)

    # -- elastic membership ----------------------------------------------

    async def set_nodes(self, nodes) -> list[str]:
        """Reshape the ring to exactly ``nodes``; migrate moved pools.

        Only pools whose ring assignment changed are drained, stopped
        and dropped (to be rebuilt lazily on their new node at the next
        request) — the consistent-hash minimal-movement property made
        operational.  Returns the migrated problem keys, sorted.
        """
        nodes = list(nodes)
        if not nodes:
            raise ValueError("the ring needs at least one node")
        async with self._lock:
            new_ring = HashRing(nodes, vnodes=self.ring.vnodes)
            moved = [
                key for key, pool in self._pools.items()
                if new_ring.lookup(key) != pool.node
            ]
            for key in moved:
                pool = self._pools.pop(key)
                await pool.drain()
                await pool.stop()
            retired = set(self.ring.nodes) - set(nodes)
            self.ring = new_ring
            for node in retired:
                executor = self._executors.pop(node, None)
                if executor is not None:
                    executor.shutdown(wait=True)
            return sorted(moved)

    # -- lifecycle -------------------------------------------------------

    async def drain(self) -> None:
        for pool in list(self._pools.values()):
            await pool.drain()

    async def stop(self) -> None:
        async with self._lock:
            self._closed = True
            pools, self._pools = list(self._pools.values()), {}
            for pool in pools:
                await pool.stop()
            for executor in self._executors.values():
                executor.shutdown(wait=True)
            self._executors.clear()


def make_entry(
    request, *, clock, loop: asyncio.AbstractEventLoop
) -> _LaneEntry:
    """Build a lane entry from a parsed wire request.

    Converts the request's *relative* deadline into an absolute expiry
    on the server's (injectable) clock at admission time.
    """
    return _LaneEntry(
        request_id=request.request_id,
        syndrome=request.syndrome,
        priority=request.priority,
        expires_at=(
            clock() + request.deadline if request.deadline > 0 else None
        ),
        future=loop.create_future(),
    )

"""Networked multi-problem decode service.

The in-process :class:`~repro.service.server.DecodeService` (PR 5)
batches across clients but owns exactly one ``(problem, decoder)``
pair and its clients live inside the server's interpreter.  This
subpackage is the production shape on top of it: a TCP front end
speaking a small length-prefixed binary protocol
(:mod:`~repro.service.net.protocol`), routing each request by
*problem key* — ``code x model x p x rounds x decoder x backend`` —
through a consistent-hash ring with virtual nodes
(:mod:`~repro.service.net.ring`) to per-problem worker pools
(:mod:`~repro.service.net.router`), each wrapping the existing
``RequestBatcher``/``DecodeService``/``ServiceTelemetry`` stack.  One
server therefore amortises a patchwork of codes, and pool nodes scale
independently under skewed traffic.

Request semantics beyond the in-process service:

* **deadlines** — a request carries a relative deadline; syndromes
  that expire while queued are dropped *before* dispatch and answered
  with a distinct ``EXPIRED`` status;
* **priority lanes** — logical-measurement syndromes (priority 0)
  drain ahead of idle-round syndromes (priority 1);
* **adaptive batching** — each pool's ``max_batch`` follows its live
  backlog gauge between a floor and the configured cap.

Entry points: :class:`NetDecodeServer` (+ :class:`NetServerConfig`),
:class:`NetClient`, and ``python -m repro serve-net``.
"""

from repro.service.net.netclient import NetClient, NetConnectionError
from repro.service.net.netserver import NetDecodeServer, NetServerConfig
from repro.service.net.protocol import (
    MAX_FRAME,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    Response,
    Status,
)
from repro.service.net.ring import HashRing
from repro.service.net.router import (
    PoolConfig,
    PoolOverloadedError,
    ProblemKey,
    ProblemPool,
    Router,
    UnknownProblemKeyError,
)
from repro.service.net.telemetry import NetServerSnapshot, PoolSnapshot

__all__ = [
    "HashRing",
    "MAX_FRAME",
    "NetClient",
    "NetConnectionError",
    "NetDecodeServer",
    "NetServerConfig",
    "NetServerSnapshot",
    "PoolConfig",
    "PoolOverloadedError",
    "PoolSnapshot",
    "ProblemKey",
    "ProblemPool",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Request",
    "Response",
    "Router",
    "Status",
    "UnknownProblemKeyError",
]

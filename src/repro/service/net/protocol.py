"""Length-prefixed binary wire protocol of the networked service.

Every frame on the wire is::

    u32  payload length (big-endian, excludes these 4 bytes)
    u8   protocol version        (:data:`PROTOCOL_VERSION`)
    u8   frame type              (REQUEST / RESPONSE / ERROR)
    ...  type-specific body

``REQUEST`` body (client → server)::

    u64  request id              (unique per connection)
    u8   priority                (0 = logical measurement, 1 = idle round)
    f64  deadline                (seconds from receipt; 0 = none)
    u16  problem-key length      | that many UTF-8 bytes
    u32  syndrome length in bits | ceil(bits / 8) packed bytes

``RESPONSE`` body (server → client)::

    u64  request id
    u8   status                  (:class:`Status`)
    -- status OK --
    u8   converged | u32 iterations | f64 decode seconds
    u32  error length in bits    | ceil(bits / 8) packed bytes
    -- any other status --
    u16  detail length           | that many UTF-8 bytes

``ERROR`` body (either direction, before closing the connection)::

    u16  detail length           | that many UTF-8 bytes

Design rules, enforced by the parser and asserted by the fuzz suite
(``tests/service/test_protocol.py``):

* **every** malformed input — truncated, oversized, trailing garbage,
  unknown version/type/status, non-finite deadline — raises
  :class:`ProtocolError` with a message naming the defect; the parser
  never hangs, never silently truncates, and never returns a partially
  decoded frame;
* a length prefix above :data:`MAX_FRAME` is rejected *before* any
  payload is read, so a hostile prefix cannot make the server buffer
  gigabytes;
* encoding is pure ``struct`` packing over explicit widths —
  byte-for-byte deterministic across processes and platforms
  (no ``hash()``, no dicts on the wire).
"""

from __future__ import annotations

import asyncio
import math
import struct
from dataclasses import dataclass, field
from enum import IntEnum

import numpy as np

__all__ = [
    "MAX_FRAME",
    "PROTOCOL_VERSION",
    "FrameType",
    "ProtocolError",
    "Request",
    "Response",
    "ErrorFrame",
    "encode_request",
    "encode_response",
    "encode_error",
    "parse_payload",
    "read_frame",
    "write_frame",
]

PROTOCOL_VERSION = 1

# Upper bound on one frame's payload.  The largest legitimate frame is
# a response carrying a packed error vector (~hundreds of KB for the
# biggest registered codes); 1 MiB leaves headroom without letting a
# hostile length prefix allocate unbounded memory.
MAX_FRAME = 1 << 20

_LEN = struct.Struct(">I")
_HEAD = struct.Struct(">BB")            # version, frame type
_REQ_FIXED = struct.Struct(">QBd")      # request id, priority, deadline
_RESP_FIXED = struct.Struct(">QB")      # request id, status
_RESP_OK = struct.Struct(">BId")        # converged, iterations, seconds
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")


class FrameType(IntEnum):
    REQUEST = 1
    RESPONSE = 2
    ERROR = 3


class Status(IntEnum):
    """Response status codes.

    ``EXPIRED`` is the deadline-drop contract: the syndrome blew its
    deadline while queued and was dropped *before* dispatch — distinct
    from ``FAILED`` (the decode itself raised) and ``OVERLOADED``
    (load-shed at admission).
    """

    OK = 0
    EXPIRED = 1
    OVERLOADED = 2
    FAILED = 3
    BAD_KEY = 4
    BAD_REQUEST = 5


class ProtocolError(ValueError):
    """The byte stream violates the wire protocol."""


@dataclass(frozen=True)
class Request:
    """One decode request as it crosses the wire."""

    request_id: int
    problem_key: str
    syndrome: np.ndarray = field(repr=False)
    priority: int = 1
    deadline: float = 0.0


@dataclass(frozen=True)
class Response:
    """One decode response as it crosses the wire."""

    request_id: int
    status: Status
    error: np.ndarray | None = field(default=None, repr=False)
    converged: bool = False
    iterations: int = 0
    time_seconds: float = 0.0
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == Status.OK


@dataclass(frozen=True)
class ErrorFrame:
    """A protocol-level error; the sender closes after sending it."""

    detail: str


# -- bit packing -----------------------------------------------------------


def _pack_bits(bits: np.ndarray) -> bytes:
    bits = np.asarray(bits, dtype=np.uint8).reshape(-1)
    return np.packbits(bits).tobytes()


def _unpack_bits(payload: bytes, n_bits: int) -> np.ndarray:
    expected = (n_bits + 7) // 8
    if len(payload) != expected:
        raise ProtocolError(
            f"bit payload is {len(payload)} bytes, {n_bits} bits "
            f"need {expected}"
        )
    bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8))[:n_bits]
    return np.ascontiguousarray(bits, dtype=np.uint8)


# -- encoding --------------------------------------------------------------


def _frame(frame_type: FrameType, body: bytes) -> bytes:
    payload = _HEAD.pack(PROTOCOL_VERSION, frame_type) + body
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME}-byte protocol bound"
        )
    return _LEN.pack(len(payload)) + payload


def _check_priority(priority: int) -> int:
    if priority not in (0, 1):
        raise ProtocolError(
            f"priority must be 0 (logical) or 1 (idle), got {priority}"
        )
    return priority


def _check_deadline(deadline: float) -> float:
    deadline = float(deadline)
    if not math.isfinite(deadline) or deadline < 0:
        raise ProtocolError(
            f"deadline must be a finite non-negative number of seconds "
            f"(0 = none), got {deadline!r}"
        )
    return deadline


def encode_request(request: Request) -> bytes:
    """Serialise one request into a complete wire frame."""
    key = request.problem_key.encode("utf-8")
    if len(key) > 0xFFFF:
        raise ProtocolError("problem key exceeds 65535 UTF-8 bytes")
    if not key:
        raise ProtocolError("problem key must be non-empty")
    syndrome = np.asarray(request.syndrome, dtype=np.uint8).reshape(-1)
    body = (
        _REQ_FIXED.pack(
            request.request_id,
            _check_priority(request.priority),
            _check_deadline(request.deadline),
        )
        + _U16.pack(len(key)) + key
        + _U32.pack(syndrome.shape[0]) + _pack_bits(syndrome)
    )
    return _frame(FrameType.REQUEST, body)


def encode_response(response: Response) -> bytes:
    """Serialise one response into a complete wire frame."""
    try:
        status = Status(response.status)
    except ValueError:
        raise ProtocolError(
            f"unknown response status {response.status!r}"
        ) from None
    body = _RESP_FIXED.pack(response.request_id, status)
    if status == Status.OK:
        if response.error is None:
            raise ProtocolError("an OK response must carry an error vector")
        error = np.asarray(response.error, dtype=np.uint8).reshape(-1)
        body += (
            _RESP_OK.pack(
                bool(response.converged),
                response.iterations,
                float(response.time_seconds),
            )
            + _U32.pack(error.shape[0]) + _pack_bits(error)
        )
    else:
        detail = response.detail.encode("utf-8")
        if len(detail) > 0xFFFF:
            detail = detail[:0xFFFF]
        body += _U16.pack(len(detail)) + detail
    return _frame(FrameType.RESPONSE, body)


def encode_error(detail: str) -> bytes:
    """Serialise a protocol-error frame."""
    blob = detail.encode("utf-8")
    if len(blob) > 0xFFFF:
        blob = blob[:0xFFFF]
    return _frame(FrameType.ERROR, _U16.pack(len(blob)) + blob)


# -- decoding --------------------------------------------------------------


class _Cursor:
    """Strict reader over one payload: every under/overrun is loud."""

    def __init__(self, payload: bytes):
        self.payload = payload
        self.offset = 0

    def take(self, n: int, what: str) -> bytes:
        end = self.offset + n
        if end > len(self.payload):
            raise ProtocolError(
                f"frame truncated reading {what}: need {n} bytes at "
                f"offset {self.offset}, payload has "
                f"{len(self.payload) - self.offset} left"
            )
        blob = self.payload[self.offset:end]
        self.offset = end
        return blob

    def unpack(self, spec: struct.Struct, what: str) -> tuple:
        return spec.unpack(self.take(spec.size, what))

    def finish(self, what: str) -> None:
        if self.offset != len(self.payload):
            raise ProtocolError(
                f"{len(self.payload) - self.offset} trailing bytes "
                f"after {what}"
            )

    def text(self, length_spec: struct.Struct, what: str) -> str:
        (length,) = self.unpack(length_spec, f"{what} length")
        blob = self.take(length, what)
        try:
            return blob.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"{what} is not valid UTF-8: {exc}") from None


def _parse_request(cursor: _Cursor) -> Request:
    request_id, priority, deadline = cursor.unpack(
        _REQ_FIXED, "request header"
    )
    _check_priority(priority)
    _check_deadline(deadline)
    key = cursor.text(_U16, "problem key")
    if not key:
        raise ProtocolError("problem key must be non-empty")
    (n_bits,) = cursor.unpack(_U32, "syndrome length")
    packed = cursor.take((n_bits + 7) // 8, "syndrome bits")
    cursor.finish("request")
    return Request(
        request_id=request_id,
        problem_key=key,
        syndrome=_unpack_bits(packed, n_bits),
        priority=priority,
        deadline=deadline,
    )


def _parse_response(cursor: _Cursor) -> Response:
    request_id, status_code = cursor.unpack(_RESP_FIXED, "response header")
    try:
        status = Status(status_code)
    except ValueError:
        raise ProtocolError(
            f"unknown response status code {status_code}"
        ) from None
    if status == Status.OK:
        converged, iterations, seconds = cursor.unpack(
            _RESP_OK, "response result"
        )
        if converged not in (0, 1):
            raise ProtocolError(
                f"converged flag must be 0 or 1, got {converged}"
            )
        if not math.isfinite(seconds) or seconds < 0:
            raise ProtocolError(
                f"decode seconds must be finite and non-negative, "
                f"got {seconds!r}"
            )
        (n_bits,) = cursor.unpack(_U32, "error length")
        packed = cursor.take((n_bits + 7) // 8, "error bits")
        cursor.finish("response")
        return Response(
            request_id=request_id,
            status=status,
            error=_unpack_bits(packed, n_bits),
            converged=bool(converged),
            iterations=iterations,
            time_seconds=seconds,
        )
    detail = cursor.text(_U16, "response detail")
    cursor.finish("response")
    return Response(request_id=request_id, status=status, detail=detail)


def parse_payload(payload: bytes) -> Request | Response | ErrorFrame:
    """Parse one frame payload (the bytes after the length prefix).

    Raises :class:`ProtocolError` on any malformed input; never
    returns a partially decoded message.
    """
    cursor = _Cursor(payload)
    version, frame_type = cursor.unpack(_HEAD, "frame header")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version} "
            f"(this build speaks {PROTOCOL_VERSION})"
        )
    if frame_type == FrameType.REQUEST:
        return _parse_request(cursor)
    if frame_type == FrameType.RESPONSE:
        return _parse_response(cursor)
    if frame_type == FrameType.ERROR:
        detail = cursor.text(_U16, "error detail")
        cursor.finish("error frame")
        return ErrorFrame(detail)
    raise ProtocolError(f"unknown frame type {frame_type}")


# -- stream I/O ------------------------------------------------------------


async def read_frame(
    reader: asyncio.StreamReader, *, max_frame: int = MAX_FRAME
) -> bytes | None:
    """Read one frame payload from the stream.

    Returns ``None`` on a clean EOF at a frame boundary.  Raises
    :class:`ProtocolError` on EOF mid-frame (a torn stream), a zero
    length, or a length prefix above ``max_frame`` — the oversized
    check runs *before* the payload is read, so a hostile prefix never
    forces a large allocation.
    """
    prefix = await reader.read(_LEN.size)
    if not prefix:
        return None
    while len(prefix) < _LEN.size:
        more = await reader.read(_LEN.size - len(prefix))
        if not more:
            raise ProtocolError(
                f"stream torn inside a length prefix "
                f"({len(prefix)}/{_LEN.size} bytes)"
            )
        prefix += more
    (length,) = _LEN.unpack(prefix)
    if length == 0:
        raise ProtocolError("zero-length frame")
    if length > max_frame:
        raise ProtocolError(
            f"frame length {length} exceeds the {max_frame}-byte bound"
        )
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"stream torn inside a frame: expected {length} payload "
            f"bytes, got {len(exc.partial)}"
        ) from None


async def write_frame(writer: asyncio.StreamWriter, frame: bytes) -> None:
    """Write one already-encoded frame and drain the transport."""
    writer.write(frame)
    await writer.drain()

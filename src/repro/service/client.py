"""In-process client and the Sec. VI stream-replay harness.

:class:`ServiceClient` is the thin per-client handle over a running
:class:`~repro.service.server.DecodeService`; any number of them can
submit concurrently and their requests coalesce into shared batches.

:func:`run_service_stream` replays the paper's streaming experiment
against the *actual* server: ``shots`` syndromes are sampled offline,
``n_clients`` concurrent clients inject them at the arrival period
(request ``i`` at ``t0 + i * period``, striped over clients), and the
harness returns the reassembled batch result, the live telemetry and
the offline D/G/1 replay of the recorded service times — so the
backlog argument can be checked on a real queue, not only the model.
"""

from __future__ import annotations

import asyncio
import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.decoders.base import BatchDecodeResult, DecodeResult
from repro.problem import DecodingProblem
from repro.service.server import DecodeService, ServiceConfig
from repro.service.telemetry import ServiceSnapshot, ServiceTelemetry
from repro.sim.streaming import StreamingReport

__all__ = ["ServiceClient", "ServiceStreamResult", "run_service_stream"]


class ServiceClient:
    """One client of a running decode service.

    A client is just an addressing convenience — the service batches
    across all of them — but it is the natural unit for pacing and
    bookkeeping in multi-client experiments.
    """

    def __init__(self, service: DecodeService, name: str = "client"):
        self.service = service
        self.name = name
        self.decoded = 0

    async def decode(self, syndrome, *, wait: bool = True) -> DecodeResult:
        """Submit one syndrome and await its decoded result."""
        result = await self.service.submit(syndrome, wait=wait)
        self.decoded += 1
        return result

    async def decode_paced(
        self, syndromes, slots, period: float, t0: float
    ) -> list[tuple[int, DecodeResult]]:
        """Submit ``syndromes[k]`` at time ``t0 + slots[k] * period``.

        ``slots`` are *global* arrival indices (the stripe this client
        owns), so several clients together realise one deterministic
        arrival process.  Submission is **open-loop** — the device
        emits syndromes whether or not earlier ones are answered — so
        each slot ``await``\\ s only *admission* (``service.enqueue``)
        and responses are collected at the end.  A full service blocks
        admission, which stalls this arrival loop: under overload the
        client holds at most ``max_pending``'s worth of admitted
        requests plus one blocked slot, the bounded-memory behaviour
        the backlog argument needs.  Returns ``(slot, result)`` pairs.
        """
        loop = asyncio.get_running_loop()
        admitted = []
        for syndrome, slot in zip(syndromes, slots):
            delay = t0 + slot * period - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            admitted.append((slot, await self.service.enqueue(syndrome)))
        out = []
        for slot, future in admitted:
            out.append((slot, await future))
            self.decoded += 1
        return out


@dataclass
class ServiceStreamResult:
    """Outcome of one :func:`run_service_stream` replay.

    ``batch`` holds the per-request decode columns in arrival order —
    directly comparable (bit-for-bit, deterministic decoders) with an
    offline ``decoder.decode_many(syndromes)``.  ``model`` replays the
    telemetry's recorded service times through
    :func:`~repro.sim.streaming.simulate_stream` at the same period, so
    its utilisation equals the live gauge exactly.
    """

    errors: np.ndarray
    batch: BatchDecodeResult
    telemetry: ServiceTelemetry
    snapshot: ServiceSnapshot
    model: StreamingReport
    period: float
    n_clients: int

    @property
    def n_decoded(self) -> int:
        return len(self.batch)


def run_service_stream(
    problem: DecodingProblem,
    decoder,
    shots: int,
    seed,
    *,
    period: float,
    n_clients: int = 1,
    config: ServiceConfig | None = None,
    on_progress=None,
) -> ServiceStreamResult:
    """Replay a paced syndrome stream against a live decode service.

    Samples ``shots`` errors from ``problem`` (seeded by ``seed``),
    starts a :class:`~repro.service.server.DecodeService` for
    ``decoder`` (spec semantics as in the engine: registry name,
    factory, or instance), and drives the syndromes through
    ``n_clients`` concurrent clients at one request per ``period``
    seconds.  Blocking backpressure applies: an overloaded service
    slows the clients rather than dropping requests, so every syndrome
    is decoded.

    This is a synchronous wrapper (``asyncio.run``) — call it from
    ordinary scripts and tests, not from inside a running event loop.
    """
    if shots < 1:
        raise ValueError("shots must be positive")
    if n_clients < 1:
        raise ValueError("n_clients must be positive")
    if period <= 0:
        raise ValueError("period must be positive")
    config = config or ServiceConfig()
    if config.period is None:
        config = dataclasses.replace(config, period=period)
    rng = np.random.default_rng(seed)
    errors = problem.sample_errors(shots, rng)
    syndromes = problem.syndromes(errors)

    async def _replay():
        service = DecodeService(
            problem, decoder, config, on_progress=on_progress
        )
        async with service:
            t0 = asyncio.get_running_loop().time()
            stripes = [
                (syndromes[c::n_clients], range(c, shots, n_clients))
                for c in range(n_clients)
            ]
            clients = [
                ServiceClient(service, name=f"client-{c}")
                for c in range(n_clients)
            ]
            answered = await asyncio.gather(*(
                client.decode_paced(chunk, slots, period, t0)
                for client, (chunk, slots) in zip(clients, stripes)
            ))
            await service.drain()
        return service, answered

    service, answered = asyncio.run(_replay())
    by_slot = dict(pair for stripe in answered for pair in stripe)
    ordered = [by_slot[i] for i in range(shots)]
    return ServiceStreamResult(
        errors=errors,
        batch=BatchDecodeResult.from_results(ordered),
        telemetry=service.telemetry,
        snapshot=service.telemetry.snapshot(),
        model=service.telemetry.queue_model(period),
        period=period,
        n_clients=n_clients,
    )

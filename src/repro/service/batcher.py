"""Cross-client request coalescing with bounded-queue backpressure.

The server's front door: every client ``submit`` lands in one bounded
:class:`asyncio.Queue`; a single consumer (the server's serve loop)
pulls **batches** out of it.  A batch flushes when it reaches
``max_batch`` requests or when the oldest request has waited
``flush_latency`` seconds — the deadline the server derives from the
syndrome budget, so coalescing never costs more than a bounded slice of
the per-round response budget.

Backpressure is a slot bound on **admitted-but-unanswered** requests
(queued *and* in flight): a slot is taken at :meth:`put` and only given
back by :meth:`release` once the server delivered the response, so the
service can never hold more than ``max_pending`` requests' worth of
memory.  With ``wait=True`` an over-capacity ``put`` suspends the
client until a slot frees (the client slows to the server's pace);
with ``wait=False`` it raises :class:`ServiceOverloadedError`
immediately (load-shedding).
"""

from __future__ import annotations

import asyncio

__all__ = [
    "RequestBatcher",
    "ServiceClosed",
    "ServiceOverloadedError",
]

# Queue sentinel: wakes the consumer for shutdown.
_CLOSE = object()


class ServiceClosed(RuntimeError):
    """The service is stopped and accepts no further requests."""


class ServiceOverloadedError(RuntimeError):
    """Backpressure: the bounded request queue is full (``wait=False``)."""


class RequestBatcher:
    """Bounded FIFO of requests with deadline/size batch extraction.

    Single-consumer: exactly one task may loop on :meth:`next_batch`
    (the decode service's serve loop).  Any number of producers may
    :meth:`put` concurrently.
    """

    def __init__(
        self,
        *,
        max_batch: int,
        flush_latency: float,
        max_pending: int,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        if flush_latency < 0:
            raise ValueError("flush_latency must be non-negative")
        if max_pending < 1:
            raise ValueError("max_pending must be positive")
        self.max_batch = max_batch
        self.flush_latency = flush_latency
        self.max_pending = max_pending
        # +1 slot reserved for the close sentinel, so closing can never
        # deadlock behind a full queue of requests.
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=max_pending + 1)
        self._slots = asyncio.Semaphore(max_pending)
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def depth(self) -> int:
        """Requests currently queued (excludes the close sentinel)."""
        size = self._queue.qsize()
        return size - 1 if self._closed and size else size

    async def put(self, item, *, wait: bool = True) -> None:
        """Enqueue one request, honouring the queue bound.

        ``wait=True`` suspends until a slot frees; ``wait=False``
        raises :class:`ServiceOverloadedError` on a full queue.  Raises
        :class:`ServiceClosed` once :meth:`close` ran.
        """
        if self._closed:
            raise ServiceClosed("service is stopped")
        if wait:
            await self._slots.acquire()
        elif not self._slots.locked():
            await self._slots.acquire()
        else:
            raise ServiceOverloadedError(
                f"request queue is full ({self.max_pending} pending) — "
                "the decode service is overloaded; retry with wait=True "
                "to block until capacity frees, or slow the stream"
            )
        if self._closed:
            # close() won the race while we awaited a slot.
            self._slots.release()
            raise ServiceClosed("service is stopped")
        # Stamp enqueue time: the flush deadline is measured from when
        # the oldest request *entered the queue*, so time spent waiting
        # behind busy workers already counts against it.
        self._queue.put_nowait(
            (asyncio.get_running_loop().time(), item)
        )

    async def next_batch(self) -> list | None:
        """Pull the next coalesced batch; ``None`` after :meth:`close`.

        Blocks for the first request, then greedily drains whatever is
        already queued and keeps accepting stragglers until the flush
        deadline or ``max_batch``.  The deadline is measured from the
        moment the oldest request was *enqueued* — a request that
        already waited out ``flush_latency`` behind busy workers
        flushes immediately after the greedy drain instead of paying
        the deadline a second time.
        """
        first = await self._queue.get()
        if first is _CLOSE:
            return None
        enqueued_at, item = first
        batch = [item]
        loop = asyncio.get_running_loop()
        deadline = enqueued_at + self.flush_latency
        while len(batch) < self.max_batch:
            # Greedy pass first: a burst already sitting in the queue
            # coalesces without paying any deadline sleeps.
            try:
                entry = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    entry = await asyncio.wait_for(
                        self._queue.get(), remaining
                    )
                except asyncio.TimeoutError:
                    break
            if entry is _CLOSE:
                # Hand the current batch out first; the next call
                # observes the sentinel again and returns None.
                self._queue.put_nowait(_CLOSE)
                break
            batch.append(entry[1])
        return batch

    def release(self, n: int = 1) -> None:
        """Give back ``n`` admission slots (responses were delivered).

        The server calls this once per answered (or failed) request;
        it is what lets a blocked ``put`` proceed, so forgetting it
        would deadlock clients — the batch executor owns that pairing.
        """
        for _ in range(n):
            self._slots.release()

    def close(self) -> None:
        """Refuse new requests and wake the consumer.

        Requests already queued are still delivered by subsequent
        :meth:`next_batch` calls before it returns ``None``.
        """
        if self._closed:
            return
        self._closed = True
        self._queue.put_nowait(_CLOSE)

"""Root pytest configuration: engine fan-out and suite tiering.

``--repro-workers N`` routes every LER experiment in the benchmark
suite through the sharded multi-process engine with ``N`` workers (it
sets ``REPRO_WORKERS``; results are seed-reproducible for any value,
so tables are unchanged — only wall clock).

The ``slow`` marker (declared in ``pytest.ini``) tiers the suite:
``-m "not slow"`` is the fast gate CI runs on every push, the full
suite runs as a separate job.  Everything under ``benchmarks/`` is
marked slow automatically by ``benchmarks/conftest.py``.
"""

import os


def pytest_addoption(parser):
    parser.addoption(
        "--repro-workers",
        type=int,
        default=None,
        metavar="N",
        help="fan LER experiments out over N engine worker processes "
             "(sets REPRO_WORKERS)",
    )


def pytest_configure(config):
    workers = config.getoption("--repro-workers")
    if workers is not None:
        os.environ["REPRO_WORKERS"] = str(workers)

"""Root pytest configuration: engine fan-out, suite tiering, sanitizer.

``--repro-workers N`` routes every LER experiment in the benchmark
suite through the sharded multi-process engine with ``N`` workers (it
sets ``REPRO_WORKERS``; results are seed-reproducible for any value,
so tables are unchanged — only wall clock).

The ``slow`` marker (declared in ``pytest.ini``) tiers the suite:
``-m "not slow"`` is the fast gate CI runs on every push, the full
suite runs as a separate job.  Everything under ``benchmarks/`` is
marked slow automatically by ``benchmarks/conftest.py``.

The runtime leak sanitizer (:mod:`repro.devtools.sanitizer`) is loaded
here so ``pytest --leak-check`` fails any test that leaks live
threads, child processes or unclosed executors — the engine and
service suites are the hot risk, and CI's fast gate runs with it on.
The plugin is inert without the flag.
"""

import os
import sys

# Make ``pytest`` work from a clean checkout without PYTHONPATH=src
# (the documented invocation still sets it; duplicates are harmless).
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))

# pytester powers the sanitizer-plugin tests in tests/devtools/ and
# must be declared here: pytest rejects pytest_plugins in non-root
# conftests.
pytest_plugins = ("repro.devtools.sanitizer", "pytester")


def pytest_addoption(parser):
    parser.addoption(
        "--repro-workers",
        type=int,
        default=None,
        metavar="N",
        help="fan LER experiments out over N engine worker processes "
             "(sets REPRO_WORKERS)",
    )


def pytest_configure(config):
    workers = config.getoption("--repro-workers")
    if workers is not None:
        os.environ["REPRO_WORKERS"] = str(workers)
